//! Trace-based performance simulator for accelerator arrays — the
//! reproduction of the paper's in-house TPU-v2/v3 simulator (§6.1).
//!
//! The paper describes its simulator in one paragraph:
//!
//! > "we derive the tensor accessing traces (loading and storing) and
//! > partial sum computation (MULT and ADD) traces for the simulation and
//! > then we calculate the time consuming for the computation and data
//! > accessing. The trace granularity for FC layer is element-wise (i.e.,
//! > 1) and for CONV is kernel-wise (e.g., 3x3)."
//!
//! This crate implements exactly that, with the aggregation needed to
//! make ImageNet-scale simulation tractable: per (leaf group, layer,
//! phase) the [`trace`] module emits *counted* segments of LOAD / STORE /
//! MULT / ADD events at the paper's granularity (element-wise for FC,
//! kernel-window-wise for CONV); the [`machine`] module prices segments
//! on an accelerator's compute pipeline and HBM channel; and
//! [`Simulator`] executes a full training step — forward sweep, then
//! backward + gradient sweep — over a hierarchically partitioned array in
//! bulk-synchronous order, charging partial-sum exchanges and inter-layer
//! tensor conversions on the network links of every bisection level.
//!
//! The simulator is deliberately *independent* of the analytic cost model
//! used by the search: the cost model plans, the simulator measures.
//! Cross-validation tests in `tests/` check that the two agree where they
//! must.
//!
//! # Example
//!
//! ```
//! use accpar_dnn::zoo;
//! use accpar_hw::{AcceleratorArray, GroupTree};
//! use accpar_partition::{HierPlan, LayerPlan, NetworkPlan};
//! use accpar_sim::{SimConfig, Simulator};
//!
//! let net = zoo::lenet(512)?;
//! let view = net.train_view()?;
//! let array = AcceleratorArray::heterogeneous_tpu(2, 2);
//! let tree = GroupTree::bisect(&array, 2)?;
//!
//! // Plain data parallelism at both hierarchy levels.
//! let level = NetworkPlan::uniform(view.weighted_len(), LayerPlan::data_parallel());
//! let plan = HierPlan::new(vec![level.clone(), level]).to_tree();
//!
//! let report = accpar_sim::simulate(&SimConfig::default(), &view, &plan, &tree, None)?;
//! assert!(report.total_secs > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

mod config;
pub mod des;
mod error;
mod faults;
mod geometry;
pub mod machine;
pub mod memory;
mod simulator;
pub mod trace;
pub mod tracefile;

pub use config::{MemModel, Optimizer, SimConfig};
pub use des::{simulate_des, simulate_des_in, DesArena, DesReport};
#[doc(hidden)]
pub use des::simulate_des_naive;
pub use error::SimError;
pub use memory::{memory_report, MemoryReport};
pub use simulator::{LayerBreakdown, SimReport, Simulator};

/// One-call entry point for the bulk-synchronous simulator: simulates
/// one training step of `view` partitioned by `plan` over `tree`,
/// entirely driven by `config`, optionally under an injected
/// [`FaultModel`](accpar_hw::FaultModel).
///
/// Equivalent to `Simulator::new(*config).simulate(view, plan, tree,
/// faults)`; use [`Simulator::with_obs`] when the step should be
/// traced.
///
/// # Errors
///
/// The same validation and fault errors as [`Simulator::simulate`].
pub fn simulate(
    config: &SimConfig,
    view: &accpar_dnn::TrainView,
    plan: &accpar_partition::PlanTree,
    tree: &accpar_hw::GroupTree,
    faults: Option<&accpar_hw::FaultModel>,
) -> Result<SimReport, SimError> {
    Simulator::new(*config).simulate(view, plan, tree, faults)
}
