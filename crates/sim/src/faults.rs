//! Shared fault-model preparation for both simulator backends.

use crate::error::SimError;
use accpar_hw::{FaultModel, FaultTarget, GroupTree};

/// Validates `faults` against `tree` and folds the rate faults into a
/// degraded tree. Returns the degraded tree and the per-leaf transient
/// stall windows (seconds, one entry per leaf left to right).
///
/// Dropout is *not* simulatable against the original plan — the plan
/// still assigns shards to the missing leaf — so a dropped leaf is
/// reported as [`SimError::DroppedLeaf`]; callers re-plan on the reduced
/// array (see `accpar-core`) before simulating.
pub(crate) fn prepare(
    tree: &GroupTree,
    faults: &FaultModel,
) -> Result<(GroupTree, Vec<f64>), SimError> {
    let leaves = tree.leaf_count();
    let cuts = tree.cut_count();
    for fault in faults.faults() {
        match fault.target {
            FaultTarget::Leaf(leaf) if leaf >= leaves => {
                return Err(SimError::FaultLeafOutOfRange { leaf, leaves });
            }
            FaultTarget::Cut(cut) if cut >= cuts => {
                return Err(SimError::FaultCutOutOfRange { cut, cuts });
            }
            FaultTarget::Leaf(_) | FaultTarget::Cut(_) => {}
        }
    }
    if let Some(&leaf) = faults.dropped_leaves().first() {
        return Err(SimError::DroppedLeaf { leaf });
    }
    let degraded = tree
        .degraded(faults)
        .map_err(|e| SimError::Fault(e.to_string()))?;
    let stalls = (0..leaves).map(|i| faults.stall_secs(i)).collect();
    Ok((degraded, stalls))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_hw::AcceleratorArray;

    fn tree() -> GroupTree {
        GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(4), 2).unwrap()
    }

    #[test]
    fn out_of_range_targets_are_typed_errors() {
        let t = tree();
        let faults = FaultModel::new().slow_leaf(4, 0.5).unwrap();
        assert_eq!(
            prepare(&t, &faults).unwrap_err(),
            SimError::FaultLeafOutOfRange { leaf: 4, leaves: 4 }
        );
        let faults = FaultModel::new().degrade_cut(3, 0.5).unwrap();
        assert_eq!(
            prepare(&t, &faults).unwrap_err(),
            SimError::FaultCutOutOfRange { cut: 3, cuts: 3 }
        );
    }

    #[test]
    fn dropout_is_reported_not_simulated() {
        let t = tree();
        let faults = FaultModel::new().drop_leaf(2);
        assert_eq!(
            prepare(&t, &faults).unwrap_err(),
            SimError::DroppedLeaf { leaf: 2 }
        );
    }

    #[test]
    fn stall_vector_covers_every_leaf() {
        let t = tree();
        let faults = FaultModel::new().stall_leaf(1, 0.25).unwrap();
        let (degraded, stalls) = prepare(&t, &faults).unwrap();
        assert_eq!(degraded.leaf_count(), 4);
        assert_eq!(stalls, vec![0.0, 0.25, 0.0, 0.0]);
    }
}
