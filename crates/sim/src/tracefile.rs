//! Compact binary encoding of trace streams, for dumping a simulated
//! step's full trace to disk and inspecting it offline.
//!
//! Format (little-endian): the magic `ACTR`, a `u32` segment count, then
//! per segment one op byte (`0 = Load, 1 = Store, 2 = Mult, 3 = Add`),
//! `u64` units and `u64` elements-per-unit.

use crate::trace::{TraceOp, TraceSegment};
use std::fmt;

/// Magic prefix of an encoded trace stream.
pub const MAGIC: [u8; 4] = *b"ACTR";

/// Errors produced while decoding a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceDecodeError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ended before the declared number of segments.
    Truncated,
    /// An op byte outside `0..=3`.
    BadOp(u8),
    /// Trailing bytes after the declared segments.
    TrailingBytes(usize),
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "missing ACTR magic"),
            TraceDecodeError::Truncated => write!(f, "trace stream ends mid-segment"),
            TraceDecodeError::BadOp(op) => write!(f, "unknown trace op byte {op}"),
            TraceDecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the declared segments")
            }
        }
    }
}

impl std::error::Error for TraceDecodeError {}

fn op_byte(op: TraceOp) -> u8 {
    match op {
        TraceOp::Load => 0,
        TraceOp::Store => 1,
        TraceOp::Mult => 2,
        TraceOp::Add => 3,
    }
}

fn byte_op(b: u8) -> Result<TraceOp, TraceDecodeError> {
    Ok(match b {
        0 => TraceOp::Load,
        1 => TraceOp::Store,
        2 => TraceOp::Mult,
        3 => TraceOp::Add,
        other => return Err(TraceDecodeError::BadOp(other)),
    })
}

/// Encodes a segment stream.
///
/// # Panics
///
/// Panics if the stream holds more than `u32::MAX` segments.
#[must_use]
pub fn encode_segments(segments: &[TraceSegment]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + segments.len() * 17);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(
        &u32::try_from(segments.len())
            .expect("fewer than 2^32 segments")
            .to_le_bytes(),
    );
    for seg in segments {
        buf.push(op_byte(seg.op));
        buf.extend_from_slice(&seg.units.to_le_bytes());
        buf.extend_from_slice(&seg.unit_elems.to_le_bytes());
    }
    buf
}

/// A little-endian cursor over a decode buffer. Bounds are checked by
/// the caller before each read.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.buf[self.pos];
        self.pos += 1;
        b
    }

    fn get_array<const N: usize>(&mut self) -> [u8; N] {
        let mut out = [0u8; N];
        out.copy_from_slice(&self.buf[self.pos..self.pos + N]);
        self.pos += N;
        out
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.get_array())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.get_array())
    }
}

/// Decodes a segment stream encoded by [`encode_segments`].
///
/// # Errors
///
/// Returns a [`TraceDecodeError`] for malformed input.
pub fn decode_segments(buf: impl AsRef<[u8]>) -> Result<Vec<TraceSegment>, TraceDecodeError> {
    let mut buf = Cursor {
        buf: buf.as_ref(),
        pos: 0,
    };
    if buf.remaining() < 8 {
        return Err(TraceDecodeError::BadMagic);
    }
    let magic: [u8; 4] = buf.get_array();
    if magic != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let count = buf.get_u32_le() as usize;
    let mut segments = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if buf.remaining() < 17 {
            return Err(TraceDecodeError::Truncated);
        }
        let op = byte_op(buf.get_u8())?;
        let units = buf.get_u64_le();
        let unit_elems = buf.get_u64_le();
        segments.push(TraceSegment {
            op,
            units,
            unit_elems,
        });
    }
    if buf.remaining() > 0 {
        return Err(TraceDecodeError::TrailingBytes(buf.remaining()));
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(op: TraceOp, units: u64, unit_elems: u64) -> TraceSegment {
        TraceSegment {
            op,
            units,
            unit_elems,
        }
    }

    #[test]
    fn round_trip_simple() {
        let segs = vec![
            seg(TraceOp::Load, 100, 1),
            seg(TraceOp::Mult, 5000, 9),
            seg(TraceOp::Add, 4900, 9),
            seg(TraceOp::Store, 100, 1),
        ];
        let encoded = encode_segments(&segs);
        assert_eq!(&encoded[..4], b"ACTR");
        let decoded = decode_segments(encoded).unwrap();
        assert_eq!(decoded, segs);
    }

    #[test]
    fn empty_stream_round_trips() {
        let encoded = encode_segments(&[]);
        assert_eq!(encoded.len(), 8);
        assert_eq!(decode_segments(encoded).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_segments(b"NOPE\x00\x00\x00\x00").unwrap_err();
        assert_eq!(err, TraceDecodeError::BadMagic);
        let err = decode_segments(b"AC").unwrap_err();
        assert_eq!(err, TraceDecodeError::BadMagic);
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut encoded = encode_segments(&[seg(TraceOp::Load, 1, 1)]);
        encoded.truncate(encoded.len() - 1);
        assert_eq!(
            decode_segments(&encoded).unwrap_err(),
            TraceDecodeError::Truncated
        );
    }

    #[test]
    fn bad_op_rejected() {
        let mut encoded = encode_segments(&[seg(TraceOp::Load, 1, 1)]);
        encoded[8] = 7;
        assert_eq!(
            decode_segments(&encoded).unwrap_err(),
            TraceDecodeError::BadOp(7)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = encode_segments(&[seg(TraceOp::Load, 1, 1)]);
        encoded.push(0);
        assert_eq!(
            decode_segments(&encoded).unwrap_err(),
            TraceDecodeError::TrailingBytes(1)
        );
    }

    /// Deterministic stand-in for the old property test: a seeded
    /// xorshift stream generates 64 random segment streams of varying
    /// length and round-trips each.
    #[test]
    fn round_trip_random_streams() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for case in 0..64usize {
            let len = case % 17;
            let segs: Vec<TraceSegment> = (0..len)
                .map(|_| TraceSegment {
                    op: byte_op((next() % 4) as u8).unwrap(),
                    units: next(),
                    unit_elems: next(),
                })
                .collect();
            let decoded = decode_segments(encode_segments(&segs)).unwrap();
            assert_eq!(decoded, segs);
        }
    }
}
