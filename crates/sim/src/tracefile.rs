//! Compact binary encoding of trace streams, for dumping a simulated
//! step's full trace to disk and inspecting it offline.
//!
//! Format (little-endian): the magic `ACTR`, a `u32` segment count, then
//! per segment one op byte (`0 = Load, 1 = Store, 2 = Mult, 3 = Add`),
//! `u64` units and `u64` elements-per-unit.

use crate::trace::{TraceOp, TraceSegment};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Magic prefix of an encoded trace stream.
pub const MAGIC: [u8; 4] = *b"ACTR";

/// Errors produced while decoding a trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceDecodeError {
    /// The buffer does not start with [`MAGIC`].
    BadMagic,
    /// The buffer ended before the declared number of segments.
    Truncated,
    /// An op byte outside `0..=3`.
    BadOp(u8),
    /// Trailing bytes after the declared segments.
    TrailingBytes(usize),
}

impl fmt::Display for TraceDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceDecodeError::BadMagic => write!(f, "missing ACTR magic"),
            TraceDecodeError::Truncated => write!(f, "trace stream ends mid-segment"),
            TraceDecodeError::BadOp(op) => write!(f, "unknown trace op byte {op}"),
            TraceDecodeError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after the declared segments")
            }
        }
    }
}

impl std::error::Error for TraceDecodeError {}

fn op_byte(op: TraceOp) -> u8 {
    match op {
        TraceOp::Load => 0,
        TraceOp::Store => 1,
        TraceOp::Mult => 2,
        TraceOp::Add => 3,
    }
}

fn byte_op(b: u8) -> Result<TraceOp, TraceDecodeError> {
    Ok(match b {
        0 => TraceOp::Load,
        1 => TraceOp::Store,
        2 => TraceOp::Mult,
        3 => TraceOp::Add,
        other => return Err(TraceDecodeError::BadOp(other)),
    })
}

/// Encodes a segment stream.
///
/// # Panics
///
/// Panics if the stream holds more than `u32::MAX` segments.
#[must_use]
pub fn encode_segments(segments: &[TraceSegment]) -> Bytes {
    let mut buf = BytesMut::with_capacity(8 + segments.len() * 17);
    buf.put_slice(&MAGIC);
    buf.put_u32_le(u32::try_from(segments.len()).expect("fewer than 2^32 segments"));
    for seg in segments {
        buf.put_u8(op_byte(seg.op));
        buf.put_u64_le(seg.units);
        buf.put_u64_le(seg.unit_elems);
    }
    buf.freeze()
}

/// Decodes a segment stream encoded by [`encode_segments`].
///
/// # Errors
///
/// Returns a [`TraceDecodeError`] for malformed input.
pub fn decode_segments(mut buf: impl Buf) -> Result<Vec<TraceSegment>, TraceDecodeError> {
    if buf.remaining() < 8 {
        return Err(TraceDecodeError::BadMagic);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if magic != MAGIC {
        return Err(TraceDecodeError::BadMagic);
    }
    let count = buf.get_u32_le() as usize;
    let mut segments = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        if buf.remaining() < 17 {
            return Err(TraceDecodeError::Truncated);
        }
        let op = byte_op(buf.get_u8())?;
        let units = buf.get_u64_le();
        let unit_elems = buf.get_u64_le();
        segments.push(TraceSegment {
            op,
            units,
            unit_elems,
        });
    }
    if buf.has_remaining() {
        return Err(TraceDecodeError::TrailingBytes(buf.remaining()));
    }
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn seg(op: TraceOp, units: u64, unit_elems: u64) -> TraceSegment {
        TraceSegment {
            op,
            units,
            unit_elems,
        }
    }

    #[test]
    fn round_trip_simple() {
        let segs = vec![
            seg(TraceOp::Load, 100, 1),
            seg(TraceOp::Mult, 5000, 9),
            seg(TraceOp::Add, 4900, 9),
            seg(TraceOp::Store, 100, 1),
        ];
        let encoded = encode_segments(&segs);
        assert_eq!(&encoded[..4], b"ACTR");
        let decoded = decode_segments(encoded).unwrap();
        assert_eq!(decoded, segs);
    }

    #[test]
    fn empty_stream_round_trips() {
        let encoded = encode_segments(&[]);
        assert_eq!(encoded.len(), 8);
        assert_eq!(decode_segments(encoded).unwrap(), vec![]);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = decode_segments(&b"NOPE\x00\x00\x00\x00"[..]).unwrap_err();
        assert_eq!(err, TraceDecodeError::BadMagic);
        let err = decode_segments(&b"AC"[..]).unwrap_err();
        assert_eq!(err, TraceDecodeError::BadMagic);
    }

    #[test]
    fn truncated_stream_rejected() {
        let mut encoded = encode_segments(&[seg(TraceOp::Load, 1, 1)]).to_vec();
        encoded.truncate(encoded.len() - 1);
        assert_eq!(
            decode_segments(&encoded[..]).unwrap_err(),
            TraceDecodeError::Truncated
        );
    }

    #[test]
    fn bad_op_rejected() {
        let mut encoded = encode_segments(&[seg(TraceOp::Load, 1, 1)]).to_vec();
        encoded[8] = 7;
        assert_eq!(
            decode_segments(&encoded[..]).unwrap_err(),
            TraceDecodeError::BadOp(7)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = encode_segments(&[seg(TraceOp::Load, 1, 1)]).to_vec();
        encoded.push(0);
        assert_eq!(
            decode_segments(&encoded[..]).unwrap_err(),
            TraceDecodeError::TrailingBytes(1)
        );
    }

    proptest! {
        #[test]
        fn round_trip_random_streams(
            raw in proptest::collection::vec((0u8..4, any::<u64>(), any::<u64>()), 0..64),
        ) {
            let segs: Vec<TraceSegment> = raw
                .into_iter()
                .map(|(op, units, unit_elems)| TraceSegment {
                    op: byte_op(op).unwrap(),
                    units,
                    unit_elems,
                })
                .collect();
            let decoded = decode_segments(encode_segments(&segs)).unwrap();
            prop_assert_eq!(decoded, segs);
        }
    }
}
