//! Trace generation: counted LOAD / STORE / MULT / ADD segments per
//! (layer, phase), at the paper's granularity — element-wise for FC
//! layers, kernel-window-wise for CONV layers (§6.1).
//!
//! A [`TraceSegment`] is a run-length-encoded stretch of identical trace
//! events: `units` events touching `unit_elems` tensor elements each.
//! Aggregation preserves the total element and FLOP counts exactly, so
//! pricing a segment stream gives the same time as pricing the paper's
//! fully expanded trace, while remaining tractable at ImageNet scale.

use accpar_dnn::{TrainLayer, WeightedKind};
use accpar_partition::Phase;


/// The kind of a trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceOp {
    /// Read tensor data from HBM.
    Load,
    /// Write tensor data to HBM.
    Store,
    /// A multiply (one FLOP per element pair).
    Mult,
    /// An add (one FLOP per element pair), including partial-sum
    /// accumulation.
    Add,
}

/// A run of identical trace events: `units` events, each touching
/// `unit_elems` elements (1 for FC traces, the kernel window size for
/// CONV traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSegment {
    /// Event kind.
    pub op: TraceOp,
    /// Number of events in the run.
    pub units: u64,
    /// Elements touched per event.
    pub unit_elems: u64,
}

impl TraceSegment {
    /// Total elements covered by the run.
    #[must_use]
    pub const fn elems(&self) -> u64 {
        self.units * self.unit_elems
    }

    /// Whether the segment represents arithmetic (MULT/ADD) rather than
    /// memory traffic.
    #[must_use]
    pub const fn is_arith(&self) -> bool {
        matches!(self.op, TraceOp::Mult | TraceOp::Add)
    }
}

pub use accpar_partition::ShardScales;

/// Emits the trace segments of one phase of one layer for a leaf holding
/// the given shard: two operand LOADs, the MULT and ADD runs, and the
/// result STORE — plus, for a layer carrying an
/// [`AttnStage`](accpar_dnn::AttnStage), the forward-phase
/// score/softmax/context stage segments.
///
/// Event granularity follows the paper: FC and embedding traces are
/// element-wise (`unit_elems = 1`), CONV traces are kernel-window-wise
/// (`unit_elems = k_h·k_w`). Fractional shard scales round to the nearest
/// whole unit.
///
/// # Example
///
/// ```
/// use accpar_dnn::zoo;
/// use accpar_partition::Phase;
/// use accpar_sim::trace::{phase_segments, ShardScales, TraceOp};
///
/// let net = zoo::lenet(8)?;
/// let view = net.train_view()?;
/// let conv1 = view.layers().next().unwrap();
/// let segs = phase_segments(conv1, Phase::Forward, ShardScales::full());
/// // CONV traces are kernel-window-wise: 5×5 = 25 elements per event.
/// assert!(segs.iter().any(|s| s.op == TraceOp::Mult && s.unit_elems == 25));
/// # Ok::<(), accpar_dnn::NetworkError>(())
/// ```
#[must_use]
pub fn phase_segments(layer: &TrainLayer, phase: Phase, scales: ShardScales) -> Vec<TraceSegment> {
    let unit = match layer.kind() {
        WeightedKind::Fc | WeightedKind::Embedding => 1u64,
        WeightedKind::Conv { window } => (window.0 * window.1) as u64,
    };
    let f_in = layer.in_fmap().size() as f64 * scales.f_in;
    let f_out = layer.out_fmap().size() as f64 * scales.f_out;
    let w = layer.weight().size() as f64 * scales.weight;

    // Per-phase operands, result and reduction length (Table 6 / §4.3).
    let (loads, stores, out_elems, reduction) = match phase {
        Phase::Forward => (
            [f_in, w],
            f_out,
            layer.out_fmap().size() as f64 * scales.flops,
            layer.forward_reduction(),
        ),
        Phase::Backward => (
            [f_out, w],
            f_in,
            layer.in_fmap().size() as f64 * scales.flops,
            layer.backward_reduction(),
        ),
        Phase::Gradient => (
            [f_in, f_out],
            w,
            layer.weight().size() as f64 * scales.flops,
            layer.gradient_reduction(),
        ),
    };

    let seg = |op: TraceOp, elems: f64, unit_elems: u64| TraceSegment {
        op,
        units: (elems / unit_elems as f64).round() as u64,
        unit_elems,
    };
    // MULTs: `reduction` per output element; ADDs: `reduction − 1`.
    let mults = out_elems * reduction as f64;
    let adds = out_elems * reduction.saturating_sub(1) as f64;
    let mut segs = vec![
        seg(TraceOp::Load, loads[0], unit),
        seg(TraceOp::Load, loads[1], unit),
        seg(TraceOp::Mult, mults, unit),
        seg(TraceOp::Add, adds, unit),
        seg(TraceOp::Store, stores, unit),
    ];
    if phase == Phase::Forward {
        if let Some(stage) = layer.attn() {
            segs.extend(attn_stage_segments(layer, stage, scales));
        }
    }
    segs
}

/// The forward-phase trace of the attention stage riding the `o`
/// projection: `QKᵀ` score MULT/ADDs, softmax ADDs, and the
/// `softmax(scores)·V` context MULT/ADDs, plus the Q/K/V LOADs and the
/// context STORE. All element counts scale with the leaf's input-feature
/// share (the token share under Type-I, the head share under Type-II,
/// the full duplicated stage under Type-III), mirroring the analytic
/// model's stage charge. Arithmetic totals sum exactly to
/// `AttnStage::flops × f_in` before rounding.
fn attn_stage_segments(
    layer: &TrainLayer,
    stage: accpar_dnn::AttnStage,
    scales: ShardScales,
) -> [TraceSegment; 7] {
    let batch = layer.in_fmap().batch();
    let scores = stage.scores_elems(batch) as f64 * scales.f_in;
    let context = (batch * stage.heads * stage.seq * stage.d_head) as f64 * scales.f_in;
    let (dh, s) = (stage.d_head as f64, stage.seq as f64);
    let seg = |op: TraceOp, elems: f64| TraceSegment {
        op,
        units: elems.round() as u64,
        unit_elems: 1,
    };
    [
        // Q, K, V operands (each B·S·H·d_h, i.e. `context` elements).
        seg(TraceOp::Load, 3.0 * context),
        // scores = Q Kᵀ: d_h MULTs and d_h − 1 ADDs per score.
        seg(TraceOp::Mult, scores * dh),
        seg(TraceOp::Add, scores * (dh - 1.0)),
        // softmax: SOFTMAX_FLOPS_PER_SCORE per score.
        seg(
            TraceOp::Add,
            scores * accpar_dnn::SOFTMAX_FLOPS_PER_SCORE as f64,
        ),
        // context = softmax(scores) · V: S MULTs and S − 1 ADDs per elem.
        seg(TraceOp::Mult, context * s),
        seg(TraceOp::Add, context * (s - 1.0)),
        seg(TraceOp::Store, context),
    ]
}

/// Total FLOPs represented by a segment stream.
#[must_use]
pub fn total_flops(segments: &[TraceSegment]) -> u64 {
    segments
        .iter()
        .filter(|s| s.is_arith())
        .map(TraceSegment::elems)
        .sum()
}

/// Total bytes moved to/from HBM by a segment stream.
#[must_use]
pub fn total_mem_elems(segments: &[TraceSegment]) -> u64 {
    segments
        .iter()
        .filter(|s| !s.is_arith())
        .map(TraceSegment::elems)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::NetworkBuilder;
    use accpar_tensor::FeatureShape;

    fn fc_layer() -> TrainLayer {
        NetworkBuilder::new("t", FeatureShape::fc(8, 20))
            .linear("fc", 20, 30)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .next()
            .unwrap()
            .clone()
    }

    #[test]
    fn fc_traces_are_element_wise() {
        let segs = phase_segments(&fc_layer(), Phase::Forward, ShardScales::full());
        assert!(segs.iter().all(|s| s.unit_elems == 1));
    }

    #[test]
    fn forward_trace_flops_match_table_6() {
        let l = fc_layer();
        let segs = phase_segments(&l, Phase::Forward, ShardScales::full());
        assert_eq!(total_flops(&segs), l.forward_flops());
    }

    #[test]
    fn all_phases_match_layer_flop_counts() {
        let l = fc_layer();
        for (phase, want) in [
            (Phase::Forward, l.forward_flops()),
            (Phase::Backward, l.backward_flops()),
            (Phase::Gradient, l.gradient_flops()),
        ] {
            let segs = phase_segments(&l, phase, ShardScales::full());
            assert_eq!(total_flops(&segs), want, "{phase}");
        }
    }

    #[test]
    fn memory_traffic_counts_operands_and_result() {
        let l = fc_layer();
        let segs = phase_segments(&l, Phase::Forward, ShardScales::full());
        // loads: A(F_l) + A(W); stores: A(F_{l+1}).
        assert_eq!(total_mem_elems(&segs), 8 * 20 + 20 * 30 + 8 * 30);
    }

    #[test]
    fn scales_shrink_the_trace() {
        let l = fc_layer();
        let half = ShardScales {
            f_in: 0.5,
            f_out: 0.5,
            weight: 1.0,
            flops: 0.5,
        };
        let full = phase_segments(&l, Phase::Forward, ShardScales::full());
        let shard = phase_segments(&l, Phase::Forward, half);
        assert_eq!(total_flops(&shard) * 2, total_flops(&full));
        // f_in halves, w stays, f_out halves.
        assert_eq!(total_mem_elems(&shard), 80 + 600 + 120);
    }

    #[test]
    fn attention_stage_rides_the_forward_trace() {
        let view = NetworkBuilder::new("t", FeatureShape::seq(4, 16, 32))
            .multi_head_attention("attn", 4, 32, 8)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let o = view.layers().find(|l| l.attn().is_some()).unwrap().clone();
        let stage = o.attn().unwrap();
        let fwd = phase_segments(&o, Phase::Forward, ShardScales::full());
        // Base matmul (5 segments) + stage (7 segments).
        assert_eq!(fwd.len(), 12);
        assert_eq!(
            total_flops(&fwd),
            o.forward_flops() + stage.flops(o.in_fmap().batch())
        );
        // The stage is forward-only: backward and gradient are plain.
        let bwd = phase_segments(&o, Phase::Backward, ShardScales::full());
        assert_eq!(bwd.len(), 5);
        assert_eq!(total_flops(&bwd), o.backward_flops());
        // Halving the input-feature share halves the stage work exactly.
        let half = ShardScales {
            f_in: 0.5,
            f_out: 0.5,
            weight: 1.0,
            flops: 0.5,
        };
        let shard = phase_segments(&o, Phase::Forward, half);
        assert_eq!(total_flops(&shard) * 2, total_flops(&fwd));
    }

    #[test]
    fn embedding_trace_is_a_gather() {
        let view = NetworkBuilder::new("e", FeatureShape::seq(4, 16, 1))
            .embedding("emb", 100, 32)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let l = view.layers().next().unwrap();
        let segs = phase_segments(l, Phase::Forward, ShardScales::full());
        assert!(segs.iter().all(|s| s.unit_elems == 1));
        // Reduction 1: one MULT per output element, no ADDs.
        assert_eq!(total_flops(&segs), 4 * 16 * 32);
    }

    #[test]
    fn conv_granularity_is_kernel_window() {
        let l = NetworkBuilder::new("c", FeatureShape::conv(2, 3, 8, 8))
            .conv2d("conv", 3, 4, accpar_tensor::ConvGeometry::same(3))
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .next()
            .unwrap()
            .clone();
        let segs = phase_segments(&l, Phase::Gradient, ShardScales::full());
        assert!(segs.iter().all(|s| s.unit_elems == 9));
        // Totals still match the layer's gradient FLOPs (within rounding
        // of one window unit per segment).
        let got = total_flops(&segs) as i64;
        let want = l.gradient_flops() as i64;
        assert!((got - want).abs() <= 2 * 9, "{got} vs {want}");
    }
}
