//! Shared per-layer tree geometry: the shard scales, cut links and plan
//! entries at every node and leaf of a (group tree, plan tree) pair.
//! Used by the step simulator and the memory-footprint analysis.

use accpar_hw::{GroupCaps, GroupNode};
use accpar_partition::{LayerPlan, NetworkPlan, PlanTree, ShardScales};

/// Geometry of one internal tree node for one layer: its cut links, the
/// shard scales arriving from the ancestors, and the plan of its
/// bisection.
pub(crate) struct NodeGeom<'p> {
    pub(crate) depth: usize,
    pub(crate) link_a: f64,
    pub(crate) link_b: f64,
    pub(crate) scales: ShardScales,
    pub(crate) entry: LayerPlan,
    pub(crate) plan: &'p NetworkPlan,
}

/// Geometry of one layer across the whole tree.
pub(crate) struct LayerGeom<'p> {
    pub(crate) nodes: Vec<NodeGeom<'p>>,
    pub(crate) leaves: Vec<(GroupCaps, ShardScales)>,
}

/// Walks the tree for one layer, recording node and leaf geometry.
pub(crate) fn layer_geom<'p>(root: &GroupNode, plan: &'p PlanTree, layer: usize) -> LayerGeom<'p> {
    // A complete bisect tree of this depth has 2^d leaves and 2^d − 1
    // internal nodes; for uneven trees this is just a capacity hint.
    let n_leaves = 1usize << plan.depth().min(16);
    let mut geom = LayerGeom {
        nodes: Vec::with_capacity(n_leaves - 1),
        leaves: Vec::with_capacity(n_leaves),
    };
    walk(root, Some(plan), 0, layer, ShardScales::full(), &mut geom);
    geom
}

fn walk<'p>(
    node: &GroupNode,
    plan: Option<&'p PlanTree>,
    depth: usize,
    layer: usize,
    scales: ShardScales,
    geom: &mut LayerGeom<'p>,
) {
    match (node.children(), plan) {
        (Some((a, b)), Some(p)) => {
            let entry = p.plan().layer(layer);
            geom.nodes.push(NodeGeom {
                depth,
                link_a: a.link_bw(),
                link_b: b.link_bw(),
                scales,
                entry,
                plan: p.plan(),
            });
            let alpha = entry.ratio.value();
            let (child_a, child_b) = match p.children() {
                Some((ca, cb)) => (Some(ca), Some(cb)),
                None => (None, None),
            };
            walk(a, child_a, depth + 1, layer, scales.shrink(entry.ptype, alpha), geom);
            walk(
                b,
                child_b,
                depth + 1,
                layer,
                scales.shrink(entry.ptype, 1.0 - alpha),
                geom,
            );
        }
        _ => geom.leaves.push((node.caps(), scales)),
    }
}

