use std::fmt;

/// Errors produced while simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The hierarchical plan's depth does not match the group tree's
    /// levels.
    DepthMismatch {
        /// Plan depth.
        plan: usize,
        /// Tree levels.
        tree: usize,
    },
    /// A level plan does not cover every weighted layer.
    LayerCountMismatch {
        /// Bisection level with the mismatch.
        level: usize,
        /// Layers in the plan at that level.
        plan: usize,
        /// Weighted layers in the network.
        network: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DepthMismatch { plan, tree } => write!(
                f,
                "plan depth ({plan}) does not match group-tree levels ({tree})"
            ),
            SimError::LayerCountMismatch {
                level,
                plan,
                network,
            } => write!(
                f,
                "level {level} plan covers {plan} layers but the network has {network}"
            ),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn display_mentions_numbers() {
        let e = SimError::DepthMismatch { plan: 2, tree: 3 };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
    }
}
