use std::fmt;

/// Errors produced while simulating.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The hierarchical plan's depth does not match the group tree's
    /// levels.
    DepthMismatch {
        /// Plan depth.
        plan: usize,
        /// Tree levels.
        tree: usize,
    },
    /// A level plan does not cover every weighted layer.
    LayerCountMismatch {
        /// Bisection level with the mismatch.
        level: usize,
        /// Layers in the plan at that level.
        plan: usize,
        /// Weighted layers in the network.
        network: usize,
    },
    /// A fault targets a leaf the group tree does not have.
    FaultLeafOutOfRange {
        /// The targeted leaf index.
        leaf: usize,
        /// Leaves in the tree.
        leaves: usize,
    },
    /// A fault targets a bisection cut the group tree does not have.
    FaultCutOutOfRange {
        /// The targeted cut index (pre-order).
        cut: usize,
        /// Internal nodes (cuts) in the tree.
        cuts: usize,
    },
    /// The plan assigns work to a leaf that the fault model dropped; the
    /// degraded configuration is infeasible and needs a re-plan on the
    /// reduced array (see `accpar-core`'s replanner).
    DroppedLeaf {
        /// The dropped leaf index.
        leaf: usize,
    },
    /// The fault model could not be folded into the group tree.
    Fault(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::DepthMismatch { plan, tree } => write!(
                f,
                "plan depth ({plan}) does not match group-tree levels ({tree})"
            ),
            SimError::LayerCountMismatch {
                level,
                plan,
                network,
            } => write!(
                f,
                "level {level} plan covers {plan} layers but the network has {network}"
            ),
            SimError::FaultLeafOutOfRange { leaf, leaves } => write!(
                f,
                "fault targets leaf {leaf} but the tree has {leaves} leaves"
            ),
            SimError::FaultCutOutOfRange { cut, cuts } => write!(
                f,
                "fault targets cut {cut} but the tree has {cuts} cuts"
            ),
            SimError::DroppedLeaf { leaf } => write!(
                f,
                "plan assigns work to dropped leaf {leaf}; re-plan on the reduced array"
            ),
            SimError::Fault(msg) => write!(f, "fault model could not be applied: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimError>();
    }

    #[test]
    fn display_mentions_numbers() {
        let e = SimError::DepthMismatch { plan: 2, tree: 3 };
        assert!(e.to_string().contains('2') && e.to_string().contains('3'));
    }

    #[test]
    fn fault_variant_displays_name_the_offender() {
        let leaf = SimError::FaultLeafOutOfRange { leaf: 9, leaves: 4 };
        assert!(leaf.to_string().contains("leaf 9"), "{leaf}");
        assert!(leaf.to_string().contains("4 leaves"), "{leaf}");

        let cut = SimError::FaultCutOutOfRange { cut: 5, cuts: 3 };
        assert!(cut.to_string().contains("cut 5"), "{cut}");
        assert!(cut.to_string().contains("3 cuts"), "{cut}");

        let dropped = SimError::DroppedLeaf { leaf: 2 };
        assert!(dropped.to_string().contains("dropped leaf 2"), "{dropped}");
        assert!(dropped.to_string().contains("re-plan"), "{dropped}");

        let generic = SimError::Fault("bad model".into());
        assert!(generic.to_string().contains("bad model"), "{generic}");
    }

    #[test]
    fn layer_count_mismatch_displays_all_three_numbers() {
        let e = SimError::LayerCountMismatch {
            level: 1,
            plan: 4,
            network: 8,
        };
        let s = e.to_string();
        assert!(s.contains("level 1") && s.contains('4') && s.contains('8'), "{s}");
    }
}
