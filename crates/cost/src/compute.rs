//! Computation cost: the FLOP counts of Table 6 with the convolutional
//! extension of §4.3, and the (optional) roofline refinement that bounds
//! a phase by HBM traffic as well as peak FLOPS.

use accpar_dnn::TrainLayer;
use accpar_partition::{PartitionType, Phase};
use accpar_tensor::DataFormat;

/// Full (unpartitioned) FLOPs of one phase of a layer — Table 6:
///
/// | Multiplication | FLOP |
/// |---|---|
/// | `F_{l+1} = F_l × W_l`      | `A(F_{l+1}) · (2·D_i·k_h·k_w − 1)` |
/// | `E_l = E_{l+1} × W_lᵀ`     | `A(E_l) · (2·D_o·k_h·k_w − 1)` |
/// | `ΔW_l = F_lᵀ × E_{l+1}`    | `A(W_l) · (2·B·H_o·W_o − 1)` |
///
/// For FC layers the window and spatial factors are 1, reproducing the
/// table verbatim.
#[must_use]
pub fn phase_flops(layer: &TrainLayer, phase: Phase) -> u64 {
    match phase {
        Phase::Forward => layer.forward_flops(),
        Phase::Backward => layer.backward_flops(),
        Phase::Gradient => layer.gradient_flops(),
    }
}

/// Total FLOPs of a training step through the layer.
#[must_use]
pub fn total_flops(layer: &TrainLayer) -> u64 {
    Phase::ALL.iter().map(|&p| phase_flops(layer, p)).sum()
}

/// Approximate HBM traffic (bytes) of one phase for a group with ratio
/// `alpha` under partition type `ptype`: operands read + result written,
/// honoring the type's replication rules. Used only by the roofline
/// refinement (`CostConfig::roofline`), which is off by default to match
/// the paper's Eq. 8.
#[must_use]
pub fn phase_mem_bytes(
    layer: &TrainLayer,
    ptype: PartitionType,
    phase: Phase,
    alpha: f64,
    format: DataFormat,
) -> f64 {
    let f_in = layer.in_fmap().size() as f64;
    let f_out = layer.out_fmap().size() as f64;
    let w = layer.weight().size() as f64;
    // Fractions of each tensor this group touches.
    let (f_in_frac, w_frac, f_out_frac) = match ptype {
        PartitionType::TypeI => (alpha, 1.0, alpha),
        PartitionType::TypeII => (alpha, alpha, 1.0),
        PartitionType::TypeIII => (1.0, alpha, alpha),
    };
    let elems = match phase {
        // read F_l and W_l, write F_{l+1}
        Phase::Forward => f_in * f_in_frac + w * w_frac + f_out * f_out_frac,
        // read E_{l+1} and W_l, write E_l
        Phase::Backward => f_out * f_out_frac + w * w_frac + f_in * f_in_frac,
        // read F_l and E_{l+1}, write ΔW_l
        Phase::Gradient => f_in * f_in_frac + f_out * f_out_frac + w * w_frac,
    };
    format.bytes_f64(elems)
}

/// Computation time in seconds for a group with computation density
/// `c_flops` (FLOP/s) executing its `alpha` share of one phase (Eq. 8),
/// optionally bounded below by HBM traffic at `mem_bw` bytes/s.
#[must_use]
pub fn phase_secs(
    layer: &TrainLayer,
    ptype: PartitionType,
    phase: Phase,
    alpha: f64,
    c_flops: f64,
    roofline: Option<(f64, DataFormat)>,
) -> f64 {
    let flops = alpha * phase_flops(layer, phase) as f64;
    let compute = flops / c_flops;
    match roofline {
        None => compute,
        Some((mem_bw, format)) => {
            let mem = phase_mem_bytes(layer, ptype, phase, alpha, format) / mem_bw;
            compute.max(mem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::NetworkBuilder;
    use accpar_tensor::FeatureShape;

    fn fc_layer() -> TrainLayer {
        NetworkBuilder::new("t", FeatureShape::fc(8, 20))
            .linear("fc", 20, 30)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .next()
            .unwrap()
            .clone()
    }

    #[test]
    fn table_6_fc_flops() {
        let l = fc_layer();
        // (B, D_i, D_o) = (8, 20, 30)
        assert_eq!(phase_flops(&l, Phase::Forward), 8 * 30 * (2 * 20 - 1));
        assert_eq!(phase_flops(&l, Phase::Backward), 8 * 20 * (2 * 30 - 1));
        assert_eq!(phase_flops(&l, Phase::Gradient), 20 * 30 * (2 * 8 - 1));
        assert_eq!(
            total_flops(&l),
            phase_flops(&l, Phase::Forward)
                + phase_flops(&l, Phase::Backward)
                + phase_flops(&l, Phase::Gradient)
        );
    }

    #[test]
    fn compute_time_scales_with_ratio_and_density() {
        let l = fc_layer();
        let t_full = phase_secs(&l, PartitionType::TypeI, Phase::Forward, 1.0, 1e9, None);
        let t_half = phase_secs(&l, PartitionType::TypeI, Phase::Forward, 0.5, 1e9, None);
        let t_fast = phase_secs(&l, PartitionType::TypeI, Phase::Forward, 1.0, 2e9, None);
        assert!((t_half - t_full / 2.0).abs() < 1e-18);
        assert!((t_fast - t_full / 2.0).abs() < 1e-18);
    }

    #[test]
    fn roofline_binds_when_memory_is_slow() {
        let l = fc_layer();
        // Absurdly slow memory: time must exceed the pure compute time.
        let slow = phase_secs(
            &l,
            PartitionType::TypeI,
            Phase::Forward,
            0.5,
            1e12,
            Some((1.0, DataFormat::Bf16)),
        );
        let pure = phase_secs(&l, PartitionType::TypeI, Phase::Forward, 0.5, 1e12, None);
        assert!(slow > pure);
        // Infinitely fast memory: roofline changes nothing.
        let fast = phase_secs(
            &l,
            PartitionType::TypeI,
            Phase::Forward,
            0.5,
            1e12,
            Some((f64::INFINITY, DataFormat::Bf16)),
        );
        assert_eq!(fast, pure);
    }

    #[test]
    fn mem_traffic_respects_replication() {
        let l = fc_layer();
        // Type-I touches the whole weight regardless of alpha.
        let t1 = phase_mem_bytes(&l, PartitionType::TypeI, Phase::Forward, 0.1, DataFormat::Bf16);
        let t2 = phase_mem_bytes(&l, PartitionType::TypeII, Phase::Forward, 0.1, DataFormat::Bf16);
        // Type-II reads only its alpha share of W but writes full F_{l+1}.
        let w = (20 * 30) as f64 * 2.0;
        let f_in = (8 * 20) as f64 * 2.0;
        let f_out = (8 * 30) as f64 * 2.0;
        assert!((t1 - (0.1 * f_in + w + 0.1 * f_out)).abs() < 1e-9);
        assert!((t2 - (0.1 * f_in + 0.1 * w + f_out)).abs() < 1e-9);
    }
}
