//! The partition-ratio solver of §5.3 (Eq. 10).
//!
//! For heterogeneous accelerator groups, AccPar chooses the ratio `α` so
//! the two groups' per-layer costs balance. The paper models both the
//! computation and communication cost as linear in `α`
//! (`E(α, p) = α·E(p)`) and solves
//!
//! ```text
//! α · (E_cp(p_i) + E_cm(p_i)) = β · (E_cp(p_j) + E_cm(p_j))
//! ```
//!
//! Table 4, however, notes that intra-layer communication is
//! *independent* of the ratio. [`RatioSolver::BalancedExact`] honors
//! that: it balances `α·E_cp,i + E_cm,i = β·E_cp,j + E_cm,j` (clamping to
//! `[0, 1]`), while [`RatioSolver::PaperLinear`] follows Eq. 10 verbatim.
//! The `ratio_solver` ablation bench compares the two.

use crate::model::{CostModel, Objective, PairEnv};
use accpar_dnn::TrainLayer;
use accpar_partition::{PartitionType, Phase, Ratio, ShardScales};

use crate::{comm, compute};

/// Strategy for choosing the per-layer partition ratio.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RatioSolver {
    /// Eq. 10 verbatim: both cost terms scale with `α`;
    /// `α = K_j / (K_i + K_j)` with `K = E_cp(p) + E_cm(p)` at unit ratio.
    PaperLinear,
    /// Balance with the ratio-independent intra-layer communication term
    /// held constant (Table 4's observation), clamped to `[0, 1]`.
    /// Implements Eq. 10's stated *intent* — "find the ratio to balance
    /// the sum of computation cost and communication cost among two
    /// accelerator groups" — with Table 4's correct communication term;
    /// uniformly stronger than the literal linear form in the
    /// `ratio_solver` ablation, hence the default.
    #[default]
    BalancedExact,
    /// A fixed ratio for every layer — `Fixed(Ratio::EQUAL)` reproduces
    /// the equal partitioning of OWT and HyPar.
    Fixed(Ratio),
}

impl RatioSolver {
    /// Solves for group A's ratio at one layer under partition type
    /// `ptype`.
    ///
    /// Under [`Objective::CommOnly`] the ratio plays no role in the cost
    /// (HyPar partitions equally), so the solver returns `Ratio::EQUAL`
    /// unless explicitly `Fixed`.
    #[must_use]
    pub fn solve(
        &self,
        model: &CostModel,
        layer: &TrainLayer,
        ptype: PartitionType,
        env: &PairEnv,
        scales: ShardScales,
    ) -> Ratio {
        if let RatioSolver::Fixed(r) = self {
            return *r;
        }
        if model.config().objective == Objective::CommOnly {
            return Ratio::EQUAL;
        }

        // Unit-ratio computation cost per group (Eq. 8 at α = 1),
        // scaled to the shard this pair operates on.
        let flops: f64 = Phase::ALL
            .iter()
            .map(|&p| compute::phase_flops(layer, p) as f64)
            .sum::<f64>()
            * scales.flops;
        let cp_a = flops / env.caps_a.flops;
        let cp_b = flops / env.caps_b.flops;

        // Intra-layer communication cost per group (Table 4; already
        // ratio-independent), scaled likewise.
        let psum_bytes = model.config().format.bytes_f64(
            comm::intra_psum_elems(ptype, layer) as f64 * scales.psum_scale(ptype),
        );
        let cm_a = psum_bytes / env.link_a;
        let cm_b = psum_bytes / env.link_b;

        let alpha = match self {
            RatioSolver::PaperLinear => {
                // α(cp_a + cm_a) = (1−α)(cp_b + cm_b)
                let ka = cp_a + cm_a;
                let kb = cp_b + cm_b;
                kb / (ka + kb)
            }
            RatioSolver::BalancedExact => {
                // α·cp_a + cm_a = (1−α)·cp_b + cm_b
                if cm_a == cm_b {
                    // The cm terms cancel algebraically; dividing them
                    // out keeps the cancellation exact. `(cp_b + cm) −
                    // cm` rounds, and that one-ulp nudge would make a
                    // symmetric pair's split minutely unequal — the
                    // sibling subtrees then stop being bitwise
                    // interchangeable.
                    cp_b / (cp_a + cp_b)
                } else {
                    (cp_b + cm_b - cm_a) / (cp_a + cp_b)
                }
            }
            RatioSolver::Fixed(_) => unreachable!("handled above"),
        };
        if alpha.is_finite() {
            Ratio::clamped(alpha)
        } else {
            // Degenerate shard (an ancestor level assigned this pair a
            // zero share, so every cost term vanishes): fall back to the
            // compute-proportional split.
            Ratio::clamped(env.flops_share_a())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CostConfig;
    use accpar_dnn::NetworkBuilder;
    use accpar_hw::{AcceleratorArray, GroupTree};
    use accpar_tensor::FeatureShape;

    fn fc_layer(batch: usize, d_in: usize, d_out: usize) -> TrainLayer {
        NetworkBuilder::new("t", FeatureShape::fc(batch, d_in))
            .linear("fc", d_in, d_out)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .next()
            .unwrap()
            .clone()
    }

    fn hetero_env() -> PairEnv {
        let tree =
            GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(128, 128), 1).unwrap();
        PairEnv::from_node(tree.root()).unwrap()
    }

    #[test]
    fn paper_linear_balances_the_pair_cost() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let layer = fc_layer(512, 4096, 4096);
        for t in PartitionType::ALL {
            let alpha = RatioSolver::PaperLinear.solve(&model, &layer, t, &env, ShardScales::full());
            // Eq. 10's balance: α·K_a = β·K_b with the *linear* model, so
            // recompute both sides.
            let flops: f64 = Phase::ALL
                .iter()
                .map(|&p| compute::phase_flops(&layer, p) as f64)
                .sum();
            let psum = model
                .config()
                .format
                .bytes_f64(comm::intra_psum_elems(t, &layer) as f64);
            let ka = flops / env.caps_a.flops + psum / env.link_a;
            let kb = flops / env.caps_b.flops + psum / env.link_b;
            let lhs = alpha.value() * ka;
            let rhs = alpha.complement().value() * kb;
            assert!((lhs - rhs).abs() / lhs < 1e-9, "{t}");
        }
    }

    #[test]
    fn v3_receives_more_work_than_v2() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let layer = fc_layer(512, 4096, 1000);
        // Group A is the v2 half: α < 0.5. (BalancedExact may clamp all
        // the way to 0 when the ratio-independent psum fetch dominates.)
        for solver in [RatioSolver::PaperLinear, RatioSolver::BalancedExact] {
            for t in PartitionType::ALL {
                let alpha = solver.solve(&model, &layer, t, &env, ShardScales::full());
                assert!(alpha.value() < 0.5, "{solver:?} {t}: {alpha}");
            }
        }
        for t in PartitionType::ALL {
            let alpha = RatioSolver::PaperLinear.solve(&model, &layer, t, &env, ShardScales::full());
            assert!(alpha.value() > 0.0, "PaperLinear {t}: {alpha}");
        }
    }

    #[test]
    fn balanced_exact_equalizes_or_clamps_optimally() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let layer = fc_layer(512, 4096, 4096);
        for t in PartitionType::ALL {
            let alpha = RatioSolver::BalancedExact.solve(&model, &layer, t, &env, ShardScales::full());
            let cost = model.layer_cost(&layer, t, alpha, &env, ShardScales::full());
            if alpha.is_degenerate() {
                // Clamped: the ratio-independent psum fetch makes exact
                // balance unattainable; the boundary must still be at
                // least as good as any interior point.
                for probe in [0.1, 0.25, 0.5, 0.75, 0.9] {
                    let other =
                        model.layer_cost(&layer, t, Ratio::new(probe).unwrap(), &env, ShardScales::full());
                    assert!(
                        cost.makespan() <= other.makespan() * (1.0 + 1e-12),
                        "{t} probe {probe}"
                    );
                }
            } else {
                // Interior solution ⇒ both sides equal (up to fp noise).
                assert!((cost.a - cost.b).abs() / cost.a < 1e-9, "{t}: {cost}");
            }
        }
    }

    #[test]
    fn fixed_solver_returns_its_ratio() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let layer = fc_layer(8, 4, 4);
        let r = Ratio::new(0.25).unwrap();
        assert_eq!(
            RatioSolver::Fixed(r).solve(&model, &layer, PartitionType::TypeI, &env, ShardScales::full()),
            r
        );
    }

    #[test]
    fn comm_only_objective_forces_equal_split() {
        let model = CostModel::new(CostConfig::hypar());
        let env = hetero_env();
        let layer = fc_layer(8, 4, 4);
        let alpha = RatioSolver::PaperLinear.solve(&model, &layer, PartitionType::TypeII, &env, ShardScales::full());
        assert_eq!(alpha, Ratio::EQUAL);
    }

    #[test]
    fn homogeneous_pair_splits_equally() {
        let model = CostModel::new(CostConfig::default());
        let tree =
            GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(8), 1).unwrap();
        let env = PairEnv::from_node(tree.root()).unwrap();
        let layer = fc_layer(512, 1024, 1024);
        for solver in [RatioSolver::PaperLinear, RatioSolver::BalancedExact] {
            for t in PartitionType::ALL {
                let alpha = solver.solve(&model, &layer, t, &env, ShardScales::full());
                assert!(alpha.is_balanced(), "{solver:?} {t}: {alpha}");
            }
        }
    }

    #[test]
    fn zero_shard_falls_back_to_compute_share() {
        // An ancestor level can clamp a share to zero; the solver must
        // not produce NaN for the resulting degenerate shard.
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let layer = fc_layer(8, 4, 4);
        let zero = ShardScales {
            f_in: 0.0,
            f_out: 0.0,
            weight: 0.0,
            flops: 0.0,
        };
        for solver in [RatioSolver::PaperLinear, RatioSolver::BalancedExact] {
            let alpha = solver.solve(&model, &layer, PartitionType::TypeI, &env, zero);
            assert!(alpha.value().is_finite(), "{solver:?}");
            assert!((alpha.value() - env.flops_share_a()).abs() < 1e-12);
        }
    }

    #[test]
    fn ratio_shifting_work_to_the_solved_alpha_is_no_worse_than_equal() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        for (batch, d_in, d_out) in
            [(8, 8, 8), (32, 512, 64), (255, 9, 511), (128, 128, 128), (17, 333, 8)]
        {
            let layer = fc_layer(batch, d_in, d_out);
            for &t in &PartitionType::ALL {
                let alpha =
                    RatioSolver::BalancedExact.solve(&model, &layer, t, &env, ShardScales::full());
                let solved = model
                    .layer_cost(&layer, t, alpha, &env, ShardScales::full())
                    .makespan();
                let equal = model
                    .layer_cost(&layer, t, Ratio::EQUAL, &env, ShardScales::full())
                    .makespan();
                assert!(solved <= equal + equal * 1e-12);
            }
        }
    }
}
