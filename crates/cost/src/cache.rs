//! Memoized per-(layer, type) ratio/cost tables.
//!
//! Networks repeat themselves: VGG nets stack shape-identical conv
//! layers, ResNets stack identical bottleneck blocks, and the
//! hierarchical planner revisits the *same* layer under the same shard
//! scales across sibling subtrees and replan candidates. The ratio
//! solve (Eq. 10) and the scalarized layer cost (Eq. 7 + Eq. 8) are
//! pure functions of the layer's geometry and the evaluation context,
//! so [`CostCache`] memoizes them under a **canonical key**:
//!
//! * [`LayerSig`] — the layer's geometry (kind/window, `D_i`, `D_o`,
//!   feature-map and kernel shapes) plus whether the model skips this
//!   layer's backward phase. The layer's *position* in the network is
//!   deliberately **not** part of the signature (shape-identical layers
//!   must share one entry); the one position-dependent cost rule —
//!   [`CostConfig::skip_first_backward`] applies only to layer 0 — is
//!   folded into the `skip_backward` bit instead.
//! * the [`PartitionType`] under evaluation;
//! * [`ShardScales`] and [`PairEnv`], canonicalized via [`f64::to_bits`]
//!   (bit-exact: two environments hash alike iff every capability and
//!   link bandwidth is bitwise identical — a `FaultModel`-degraded tree
//!   therefore never aliases a healthy one);
//! * the [`CostConfig`] and [`RatioSolver`] in effect.
//!
//! Because every input is captured bit-exactly, a cache hit returns the
//! exact `f64`s a fresh computation would — callers stay bit-identical
//! with and without the cache.

use crate::model::{CostConfig, CostModel, Objective, PairEnv};
use crate::ratio::RatioSolver;
use accpar_dnn::{AttnStage, TrainLayer, WeightedKind};
use accpar_partition::{PartitionType, Ratio, ShardScales};
use accpar_tensor::{FeatureShape, KernelShape};
use accpar_obs::{Counter, Histo, Obs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

// The memo maps' hasher lives in `accpar-tensor` (the workspace's
// lowest layer) so structural passes in `accpar-dnn` can share it;
// re-exported here because every cache key in this module hashes
// through it and downstream crates import it from this path.
pub use accpar_tensor::hash::{FxBuildHasher, FxHashMap, FxHasher};

/// The canonical, position-independent signature of a weighted layer
/// (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LayerSig {
    kind: WeightedKind,
    d_in: usize,
    d_out: usize,
    in_fmap: FeatureShape,
    out_fmap: FeatureShape,
    weight: KernelShape,
    /// The attention stage carried by a lowered `o` projection, if any —
    /// it adds stage FLOPs and K/V exchange, so a plain FC layer of the
    /// same geometry must not alias it.
    attn: Option<AttnStage>,
    /// Whether the model skips this layer's backward phase
    /// ([`CostConfig::skip_first_backward`] on the first weighted layer).
    skip_backward: bool,
}

impl LayerSig {
    /// The signature of `layer` under `config`'s cost rules.
    #[must_use]
    pub fn of(layer: &TrainLayer, config: &CostConfig) -> Self {
        Self {
            kind: layer.kind(),
            d_in: layer.d_in(),
            d_out: layer.d_out(),
            in_fmap: layer.in_fmap(),
            out_fmap: layer.out_fmap(),
            weight: layer.weight(),
            attn: layer.attn(),
            skip_backward: config.skip_first_backward && layer.index() == 0,
        }
    }
}

/// [`PairEnv`] canonicalized to its bit pattern.
#[must_use]
pub fn env_bits(env: &PairEnv) -> [u64; 10] {
    [
        env.caps_a.flops.to_bits(),
        env.caps_a.mem_bw.to_bits(),
        env.caps_a.net_bw.to_bits(),
        env.caps_a.hbm_bytes.to_bits(),
        env.caps_b.flops.to_bits(),
        env.caps_b.mem_bw.to_bits(),
        env.caps_b.net_bw.to_bits(),
        env.caps_b.hbm_bytes.to_bits(),
        env.link_a.to_bits(),
        env.link_b.to_bits(),
    ]
}

/// [`ShardScales`] canonicalized to its bit pattern.
#[must_use]
pub fn scales_bits(scales: ShardScales) -> [u64; 4] {
    [
        scales.f_in.to_bits(),
        scales.f_out.to_bits(),
        scales.weight.to_bits(),
        scales.flops.to_bits(),
    ]
}

/// The evaluation-context part of a key: cost configuration and ratio
/// policy, canonicalized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CtxKey {
    format: accpar_tensor::DataFormat,
    comm_only: bool,
    roofline: bool,
    solver_tag: u8,
    solver_ratio: u64,
}

impl CtxKey {
    fn of(config: &CostConfig, solver: &RatioSolver) -> Self {
        let (solver_tag, solver_ratio) = match solver {
            RatioSolver::PaperLinear => (0u8, 0u64),
            RatioSolver::BalancedExact => (1, 0),
            RatioSolver::Fixed(r) => (2, r.value().to_bits()),
        };
        Self {
            format: config.format,
            comm_only: config.objective == Objective::CommOnly,
            roofline: config.roofline,
            solver_tag,
            solver_ratio,
        }
    }
}

/// Full key of one memoized (layer, type) table cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CellKey {
    sig: LayerSig,
    ptype: PartitionType,
    scales: [u64; 4],
    env: [u64; 10],
    ctx: CtxKey,
}

/// Full key of one memoized layer *row*: every admissible type's cell at
/// once. Rows are keyed and locked once per layer instead of once per
/// cell, which matters when the cells themselves are sub-microsecond.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RowKey {
    sig: LayerSig,
    /// The admissible types, in evaluation order (padded; [`ROW_WIDTH`]
    /// bounds the arity).
    types: [Option<PartitionType>; ROW_WIDTH],
    scales: [u64; 4],
    env: [u64; 10],
    ctx: CtxKey,
}

/// Maximum number of admissible partition types a row memoizes — the
/// full AccPar space is `{TypeI, TypeII, TypeIII}`.
pub const ROW_WIDTH: usize = 3;

/// One memoized row: the first `n` cells hold the (ratio, cost) per
/// requested type, in request order; the rest is padding. `Copy`, so a
/// row hit moves no heap memory.
pub type Row = [(Ratio, f64); ROW_WIDTH];

/// Solves the ratio and scalarized cost of one (layer, type) table cell
/// — the uncached computation [`CostCache`] memoizes.
#[must_use]
pub fn layer_ratio_cost(
    model: &CostModel,
    solver: &RatioSolver,
    layer: &TrainLayer,
    ptype: PartitionType,
    env: &PairEnv,
    scales: ShardScales,
) -> (Ratio, f64) {
    let ratio = solver.solve(model, layer, ptype, env, scales);
    let cost = model.scalarize(model.layer_cost(layer, ptype, ratio, env, scales));
    (ratio, cost)
}

/// A concurrent memo of (layer, type) → (ratio, scalar cost) table
/// cells (see the [module docs](self)).
///
/// Thread-safe: lookups take a [`Mutex`]; the computation itself runs
/// outside the lock, so concurrent misses of the same key may compute
/// twice but insert identical values (every input is captured
/// bit-exactly in the key).
#[derive(Debug, Default)]
pub struct CostCache {
    cells: Mutex<FxHashMap<CellKey, (Ratio, f64)>>,
    rows: Mutex<FxHashMap<RowKey, Row>>,
    hits: AtomicU64,
    misses: AtomicU64,
    obs: OnceLock<CacheObs>,
}

/// Pre-registered metric handles the cache updates on its hot path —
/// obtained once at [`CostCache::observe`] so lookups never touch the
/// registry locks.
#[derive(Debug)]
struct CacheObs {
    hits: Counter,
    misses: Counter,
    /// One eval counter per partition type, indexed in
    /// [`PartitionType::ALL`] order.
    evals: [Counter; ROW_WIDTH],
    solve_ns: Histo,
}

impl CacheObs {
    fn of(obs: &Obs) -> Self {
        CacheObs {
            hits: obs.counter("cost.cache.hits"),
            misses: obs.counter("cost.cache.misses"),
            evals: [
                obs.counter("cost.evals.type_i"),
                obs.counter("cost.evals.type_ii"),
                obs.counter("cost.evals.type_iii"),
            ],
            solve_ns: obs.histogram("cost.solve_ns"),
        }
    }

    fn eval(&self, ptype: PartitionType) -> &Counter {
        let i = PartitionType::ALL
            .iter()
            .position(|&t| t == ptype)
            .unwrap_or(0);
        &self.evals[i]
    }
}

impl CostCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches an observability handle: registers hit/miss counters,
    /// per-partition-type eval counters, and a solve-time histogram
    /// under `cost.*`, updated on every subsequent lookup. A no-op for
    /// a disabled handle; the first enabled handle wins.
    pub fn observe(&self, obs: &Obs) {
        if obs.enabled() {
            let _ = self.obs.set(CacheObs::of(obs));
        }
    }

    /// The memoized version of [`layer_ratio_cost`]. The `skip_backward`
    /// position rule is resolved through [`LayerSig::of`] so the first
    /// layer under [`CostConfig::skip_first_backward`] gets its own
    /// entry while shape-identical interior layers share one.
    #[must_use]
    pub fn layer_ratio_cost(
        &self,
        model: &CostModel,
        solver: &RatioSolver,
        layer: &TrainLayer,
        ptype: PartitionType,
        env: &PairEnv,
        scales: ShardScales,
    ) -> (Ratio, f64) {
        let config = model.config();
        let key = CellKey {
            sig: LayerSig::of(layer, &config),
            ptype,
            scales: scales_bits(scales),
            env: env_bits(env),
            ctx: CtxKey::of(&config, solver),
        };
        if let Some(&v) = self.lock().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(o) = self.obs.get() {
                o.hits.inc();
            }
            return v;
        }
        let v = {
            let _t = self.obs.get().map(|o| o.solve_ns.timer());
            layer_ratio_cost(model, solver, layer, ptype, env, scales)
        };
        self.lock().insert(key, v);
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.misses.inc();
            o.eval(ptype).inc();
        }
        v
    }

    /// The row-granular version of [`CostCache::layer_ratio_cost`]: all
    /// of `types`' cells for one layer under a single key build and a
    /// single map access. The first `types.len()` cells of the returned
    /// [`Row`] hold one `(ratio, cost)` per type, in `types` order,
    /// bitwise identical to [`layer_ratio_cost`]; the rest is padding.
    ///
    /// Rows and single cells are memoized independently (a row hit does
    /// not consult the cell map and vice versa); hit/miss counters
    /// advance by the number of cells served either way. Returns `None`
    /// for type sets wider than the full AccPar space ([`ROW_WIDTH`]) —
    /// fall back to per-cell lookups.
    #[must_use]
    pub fn layer_row(
        &self,
        model: &CostModel,
        solver: &RatioSolver,
        layer: &TrainLayer,
        types: &[PartitionType],
        env: &PairEnv,
        scales: ShardScales,
    ) -> Option<Row> {
        if types.len() > ROW_WIDTH {
            return None;
        }
        let config = model.config();
        let mut padded = [None; ROW_WIDTH];
        for (slot, &t) in padded.iter_mut().zip(types) {
            *slot = Some(t);
        }
        let key = RowKey {
            sig: LayerSig::of(layer, &config),
            types: padded,
            scales: scales_bits(scales),
            env: env_bits(env),
            ctx: CtxKey::of(&config, solver),
        };
        let cached = self
            .rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
            .copied();
        if let Some(row) = cached {
            self.hits.fetch_add(types.len() as u64, Ordering::Relaxed);
            if let Some(o) = self.obs.get() {
                o.hits.add(types.len() as u64);
            }
            return Some(row);
        }
        let mut row: Row = [(Ratio::EQUAL, 0.0); ROW_WIDTH];
        for (cell, &t) in row.iter_mut().zip(types) {
            let _t = self.obs.get().map(|o| o.solve_ns.timer());
            *cell = layer_ratio_cost(model, solver, layer, t, env, scales);
        }
        self.rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, row);
        self.misses.fetch_add(types.len() as u64, Ordering::Relaxed);
        if let Some(o) = self.obs.get() {
            o.misses.add(types.len() as u64);
            for &t in types {
                o.eval(t).inc();
            }
        }
        Some(row)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FxHashMap<CellKey, (Ratio, f64)>> {
        self.cells.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Number of lookups answered from the memo.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that had to compute.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct cells currently memoized.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether nothing has been memoized yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// `hits / (hits + misses)`, or 0 before the first lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::NetworkBuilder;
    use accpar_hw::{AcceleratorArray, GroupTree};
    use accpar_tensor::{ConvGeometry, FeatureShape};

    fn hetero_env() -> PairEnv {
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 1).unwrap();
        PairEnv::from_node(tree.root()).unwrap()
    }

    /// Two shape-identical convs at different positions plus one that
    /// differs.
    fn layers() -> Vec<TrainLayer> {
        NetworkBuilder::new("t", FeatureShape::conv(8, 16, 14, 14))
            .conv2d("c1", 16, 16, ConvGeometry::same(3))
            .conv2d("c2", 16, 16, ConvGeometry::same(3))
            .conv2d("c3", 16, 32, ConvGeometry::same(3))
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .cloned()
            .collect()
    }

    #[test]
    fn cached_values_match_the_uncached_computation_bitwise() {
        let model = CostModel::new(CostConfig::default());
        let solver = RatioSolver::default();
        let env = hetero_env();
        let cache = CostCache::new();
        for layer in &layers() {
            for t in PartitionType::ALL {
                let fresh = layer_ratio_cost(&model, &solver, layer, t, &env, ShardScales::full());
                let cached =
                    cache.layer_ratio_cost(&model, &solver, layer, t, &env, ShardScales::full());
                assert_eq!(fresh.0.value().to_bits(), cached.0.value().to_bits());
                assert_eq!(fresh.1.to_bits(), cached.1.to_bits());
            }
        }
    }

    #[test]
    fn shape_identical_layers_share_an_entry() {
        let model = CostModel::new(CostConfig::default());
        let solver = RatioSolver::default();
        let env = hetero_env();
        let cache = CostCache::new();
        let layers = layers();
        for layer in &layers {
            for t in PartitionType::ALL {
                let _ = cache.layer_ratio_cost(&model, &solver, layer, t, &env, ShardScales::full());
            }
        }
        // c1 and c2 share signatures; c3 differs: 2 × 3 types distinct.
        assert_eq!(cache.len(), 6);
        assert_eq!(cache.misses(), 6);
        assert_eq!(cache.hits(), 3);
        assert!((cache.hit_rate() - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn skip_first_backward_splits_the_first_layer_off() {
        let config = CostConfig {
            skip_first_backward: true,
            ..CostConfig::default()
        };
        let model = CostModel::new(config);
        let solver = RatioSolver::default();
        let env = hetero_env();
        let cache = CostCache::new();
        // Two shape-identical compute-heavy FC layers, so the skipped
        // backward phase actually moves the makespan.
        let layers: Vec<TrainLayer> = NetworkBuilder::new("t", FeatureShape::fc(4096, 1024))
            .linear("fc1", 1024, 1024)
            .linear("fc2", 1024, 1024)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .cloned()
            .collect();
        // fc1 (index 0, backward skipped) must not alias fc2.
        let t = PartitionType::TypeI;
        let c1 = cache.layer_ratio_cost(&model, &solver, &layers[0], t, &env, ShardScales::full());
        let c2 = cache.layer_ratio_cost(&model, &solver, &layers[1], t, &env, ShardScales::full());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
        assert!(c1.1 <= c2.1, "skipping a phase can never cost more");
        // The makespan may be communication-bound (identical for both),
        // but the compute-bearing side must strictly shrink.
        let pc1 = model.layer_cost(&layers[0], t, c1.0, &env, ShardScales::full());
        let pc2 = model.layer_cost(&layers[1], t, c2.0, &env, ShardScales::full());
        assert!(
            pc1.b < pc2.b,
            "skipping the backward phase must cut compute: {pc1} vs {pc2}"
        );
    }

    #[test]
    fn distinct_scales_envs_and_contexts_get_distinct_entries() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let degraded = PairEnv {
            caps_a: accpar_hw::GroupCaps {
                flops: env.caps_a.flops * 0.5,
                ..env.caps_a
            },
            ..env
        };
        let cache = CostCache::new();
        let layer = &layers()[0];
        let t = PartitionType::TypeII;
        let half = ShardScales {
            f_in: 0.5,
            f_out: 0.5,
            weight: 0.5,
            flops: 0.5,
        };
        let solver = RatioSolver::default();
        let _ = cache.layer_ratio_cost(&model, &solver, layer, t, &env, ShardScales::full());
        let _ = cache.layer_ratio_cost(&model, &solver, layer, t, &env, half);
        let _ = cache.layer_ratio_cost(&model, &solver, layer, t, &degraded, ShardScales::full());
        let _ = cache.layer_ratio_cost(
            &model,
            &solver,
            layer,
            t,
            &env,
            ShardScales::full(),
        );
        let _ = cache.layer_ratio_cost(
            &model,
            &RatioSolver::Fixed(Ratio::EQUAL),
            layer,
            t,
            &env,
            ShardScales::full(),
        );
        assert_eq!(cache.misses(), 4, "scales, env and solver all key");
        assert_eq!(cache.hits(), 1);
    }
}
