use crate::{comm, compute};
use accpar_dnn::TrainLayer;
use accpar_hw::{GroupCaps, GroupNode};
use accpar_partition::{PartitionType, Phase, Ratio, ShardScales};
use accpar_tensor::DataFormat;
use std::fmt;

/// What the model minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Objective {
    /// The AccPar objective: computation **and** communication time,
    /// heterogeneity-aware (Eq. 7 + Eq. 8).
    #[default]
    Full,
    /// The HyPar proxy: total communicated *elements*, ignoring compute
    /// and bandwidth (§3.5: HyPar "uses only communication as the proxy
    /// for performance").
    CommOnly,
}

/// Configuration of a [`CostModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostConfig {
    /// Training data format; the paper uses bf16.
    pub format: DataFormat,
    /// Full cost or communication-only proxy.
    pub objective: Objective,
    /// Bound compute phases by HBM traffic as well as peak FLOPS
    /// (ablation; the paper's Eq. 8 is pure compute, so default `false`).
    pub roofline: bool,
    /// Skip the backward phase of the network's first weighted layer (no
    /// error propagates to the input). Off by default: the paper's cost
    /// tables make no exception.
    pub skip_first_backward: bool,
}

impl Default for CostConfig {
    fn default() -> Self {
        Self {
            format: DataFormat::Bf16,
            objective: Objective::Full,
            roofline: false,
            skip_first_backward: false,
        }
    }
}

impl CostConfig {
    /// The configuration HyPar's search uses: communication elements only.
    #[must_use]
    pub fn hypar() -> Self {
        Self {
            objective: Objective::CommOnly,
            ..Self::default()
        }
    }
}

/// The execution environment of one bisection level: the two groups'
/// aggregate capabilities and the bandwidth each uses to reach the other
/// across the cut.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairEnv {
    /// First group's compute capabilities.
    pub caps_a: GroupCaps,
    /// Second group's compute capabilities.
    pub caps_b: GroupCaps,
    /// Bandwidth (bytes/s) group A uses to access group B's memory.
    pub link_a: f64,
    /// Bandwidth (bytes/s) group B uses to access group A's memory.
    pub link_b: f64,
}

impl PairEnv {
    /// Builds the environment from a bisected [`GroupNode`]'s children.
    /// Returns `None` for a leaf node.
    #[must_use]
    pub fn from_node(node: &GroupNode) -> Option<Self> {
        let (a, b) = node.children()?;
        Some(Self {
            caps_a: a.caps(),
            caps_b: b.caps(),
            link_a: a.link_bw(),
            link_b: b.link_bw(),
        })
    }

    /// A symmetric environment (used by tests and the homogeneous
    /// baselines): both groups share `caps` and `link`.
    #[must_use]
    pub fn symmetric(caps: GroupCaps, link: f64) -> Self {
        Self {
            caps_a: caps,
            caps_b: caps,
            link_a: link,
            link_b: link,
        }
    }

    /// Ratio of group A's compute density to the pair total — the
    /// compute-proportional share, a useful initial guess for `α`.
    #[must_use]
    pub fn flops_share_a(&self) -> f64 {
        self.caps_a.flops / (self.caps_a.flops + self.caps_b.flops)
    }
}

/// A cost borne by the two groups of a pair, in seconds (or element
/// counts under [`Objective::CommOnly`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PairCost {
    /// Group A's cost.
    pub a: f64,
    /// Group B's cost.
    pub b: f64,
}

impl PairCost {
    /// Zero cost.
    #[must_use]
    pub const fn zero() -> Self {
        Self { a: 0.0, b: 0.0 }
    }

    /// The pair's makespan: the groups run concurrently, so the step time
    /// is the slower side.
    #[must_use]
    pub fn makespan(&self) -> f64 {
        self.a.max(self.b)
    }

    /// Total over both groups (the HyPar communication-amount metric).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.a + self.b
    }

    /// Element-wise sum.
    #[must_use]
    pub fn plus(&self, other: PairCost) -> Self {
        Self {
            a: self.a + other.a,
            b: self.b + other.b,
        }
    }

    /// Whether both sides are finite. A NaN or infinite cost (a
    /// degenerate ratio, a zero-bandwidth link under the full
    /// objective) would silently lose every `min` comparison in the DP;
    /// callers should reject it with [`NonFiniteCost`] instead.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.a.is_finite() && self.b.is_finite()
    }
}

/// A cost that came out NaN or infinite where the DP needs a finite
/// scalar (see [`PairCost::is_finite`]).
#[derive(Debug, Clone, PartialEq)]
pub struct NonFiniteCost {
    /// What produced the value (layer, partition type, objective).
    pub context: String,
    /// The offending pair.
    pub cost: PairCost,
}

impl fmt::Display for NonFiniteCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "non-finite cost {} from {}", self.cost, self.context)
    }
}

impl std::error::Error for NonFiniteCost {}

impl fmt::Display for PairCost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(a: {:.3e}, b: {:.3e})", self.a, self.b)
    }
}

/// The AccPar cost model: computation (Eq. 8, Table 6) plus communication
/// (Eq. 7, Tables 4 and 5) for a heterogeneous pair of accelerator
/// groups.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostModel {
    config: CostConfig,
}

impl CostModel {
    /// Creates a model with the given configuration.
    #[must_use]
    pub const fn new(config: CostConfig) -> Self {
        Self { config }
    }

    /// The model's configuration.
    #[must_use]
    pub const fn config(&self) -> CostConfig {
        self.config
    }

    /// Cost of executing one weighted layer under type `ptype` with group
    /// A's ratio `alpha`: the three compute phases (Eq. 8) plus the
    /// intra-layer partial-sum exchange (Table 4). `scales` describes the
    /// shard this pair operates on (the ancestors' shares in a
    /// hierarchical partition); pass [`ShardScales::full`] at the top
    /// level.
    ///
    /// A layer carrying an [`AttnStage`](accpar_dnn::AttnStage) (the `o`
    /// projection of a lowered attention layer) additionally pays the
    /// unweighted score/softmax/context stage: its FLOPs and, under
    /// Type-I, the sibling K/V exchange ([`comm::attn_stage_elems`]).
    /// Both scale with the group's input-feature share — the token share
    /// under Type-I, the head share under Type-II, and the full
    /// (replicated, hence duplicated) stage under Type-III.
    #[must_use]
    pub fn layer_cost(
        &self,
        layer: &TrainLayer,
        ptype: PartitionType,
        alpha: Ratio,
        env: &PairEnv,
        scales: ShardScales,
    ) -> PairCost {
        let psum = comm::intra_psum_elems(ptype, layer) as f64 * scales.psum_scale(ptype);
        let stage_elems = comm::attn_stage_elems(ptype, layer) as f64;
        let f_in_a = scales.shrink(ptype, alpha.value()).f_in;
        let f_in_b = scales.shrink(ptype, alpha.complement().value()).f_in;
        match self.config.objective {
            Objective::CommOnly => {
                // HyPar counts communicated elements; both groups fetch
                // the sibling's partial tensor, and each sends its own
                // K/V slice for the attention stage.
                PairCost {
                    a: psum + stage_elems * f_in_a,
                    b: psum + stage_elems * f_in_b,
                }
            }
            Objective::Full => {
                let bytes = self.config.format.bytes_f64(psum);
                let stage_flops = layer
                    .attn()
                    .map_or(0.0, |s| s.flops(layer.in_fmap().batch()) as f64);
                PairCost {
                    a: self.group_secs(
                        layer,
                        ptype,
                        alpha.value() * scales.flops,
                        &env.caps_a,
                    ) + bytes / env.link_a
                        + stage_flops * f_in_a / env.caps_a.flops
                        + self.config.format.bytes_f64(stage_elems * f_in_a) / env.link_a,
                    b: self.group_secs(
                        layer,
                        ptype,
                        alpha.complement().value() * scales.flops,
                        &env.caps_b,
                    ) + bytes / env.link_b
                        + stage_flops * f_in_b / env.caps_b.flops
                        + self.config.format.bytes_f64(stage_elems * f_in_b) / env.link_b,
                }
            }
        }
    }

    /// Compute seconds for one group across the three phases.
    fn group_secs(
        &self,
        layer: &TrainLayer,
        ptype: PartitionType,
        share: f64,
        caps: &GroupCaps,
    ) -> f64 {
        let roofline = self
            .config
            .roofline
            .then_some((caps.mem_bw, self.config.format));
        Phase::ALL
            .iter()
            .filter(|&&p| {
                !(self.config.skip_first_backward && layer.index() == 0 && p == Phase::Backward)
            })
            .map(|&p| compute::phase_secs(layer, ptype, p, share, caps.flops, roofline))
            .sum()
    }

    /// Cost of the tensor conversion between consecutive layers (Table 5,
    /// generalized to per-layer ratios): layer `l` of type `prev` with
    /// group-A ratio `alpha_prev`, layer `l+1` of type `next` with ratio
    /// `alpha_next`, and a boundary tensor of `f_elems` / `e_elems`
    /// elements.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn edge_cost(
        &self,
        prev: PartitionType,
        alpha_prev: Ratio,
        next: PartitionType,
        alpha_next: Ratio,
        f_elems: u64,
        e_elems: u64,
        env: &PairEnv,
    ) -> PairCost {
        let (a_elems, b_elems) = comm::inter_conversion_elems(
            prev,
            alpha_prev.value(),
            next,
            alpha_next.value(),
            f_elems,
            e_elems,
        );
        match self.config.objective {
            Objective::CommOnly => PairCost {
                a: a_elems,
                b: b_elems,
            },
            Objective::Full => PairCost {
                a: self.config.format.bytes_f64(a_elems) / env.link_a,
                b: self.config.format.bytes_f64(b_elems) / env.link_b,
            },
        }
    }

    /// Cost of re-laying-out a block branch's output into a junction
    /// state (see [`comm::relayout_elems`]); used by the multi-path
    /// search (§5.2).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn relayout_cost(
        &self,
        from: PartitionType,
        alpha_from: Ratio,
        to: PartitionType,
        alpha_to: Ratio,
        f_elems: u64,
        e_elems: u64,
        env: &PairEnv,
    ) -> PairCost {
        let (a_elems, b_elems) = comm::relayout_elems(
            from,
            alpha_from.value(),
            to,
            alpha_to.value(),
            f_elems,
            e_elems,
        );
        match self.config.objective {
            Objective::CommOnly => PairCost {
                a: a_elems,
                b: b_elems,
            },
            Objective::Full => PairCost {
                a: self.config.format.bytes_f64(a_elems) / env.link_a,
                b: self.config.format.bytes_f64(b_elems) / env.link_b,
            },
        }
    }

    /// The scalar the DP minimizes for a [`PairCost`]: the makespan under
    /// the full objective, the total element count under the
    /// communication-only proxy.
    #[must_use]
    pub fn scalarize(&self, cost: PairCost) -> f64 {
        match self.config.objective {
            Objective::Full => cost.makespan(),
            Objective::CommOnly => cost.total(),
        }
    }

    /// [`scalarize`](CostModel::scalarize) that rejects non-finite
    /// costs with a typed error instead of letting NaN/inf leak into
    /// (and silently lose) the DP's `min` comparisons.
    pub fn checked_scalarize(
        &self,
        cost: PairCost,
        context: impl fmt::Display,
    ) -> Result<f64, NonFiniteCost> {
        // Check the pair, not the scalar: `makespan` is a `max`, and
        // `f64::max(NaN, x)` returns `x` — a NaN lane would scalarize
        // to a finite value and leak into the DP's `min` comparisons.
        let scalar = self.scalarize(cost);
        if cost.is_finite() && scalar.is_finite() {
            Ok(scalar)
        } else {
            Err(NonFiniteCost {
                context: context.to_string(),
                cost,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::NetworkBuilder;
    use accpar_hw::{AcceleratorArray, GroupTree};
    use accpar_tensor::FeatureShape;

    fn fc_layer() -> TrainLayer {
        NetworkBuilder::new("t", FeatureShape::fc(64, 100))
            .linear("fc", 100, 200)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .next()
            .unwrap()
            .clone()
    }

    fn hetero_env() -> PairEnv {
        let tree =
            GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(4, 4), 1).unwrap();
        PairEnv::from_node(tree.root()).unwrap()
    }

    #[test]
    fn equal_split_on_heterogeneous_pair_leaves_v2_as_bottleneck() {
        let model = CostModel::new(CostConfig::default());
        let cost = model.layer_cost(&fc_layer(), PartitionType::TypeI, Ratio::EQUAL, &hetero_env(), ShardScales::full());
        assert!(cost.a > cost.b, "v2 group (a) must be slower: {cost}");
        assert_eq!(model.scalarize(cost), cost.a);
    }

    #[test]
    fn shifting_work_to_v3_reduces_makespan() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let layer = fc_layer();
        let equal = model.layer_cost(&layer, PartitionType::TypeI, Ratio::EQUAL, &env, ShardScales::full());
        let shifted =
            model.layer_cost(&layer, PartitionType::TypeI, Ratio::new(0.3).unwrap(), &env, ShardScales::full());
        assert!(shifted.makespan() < equal.makespan());
    }

    #[test]
    fn comm_only_counts_elements() {
        let model = CostModel::new(CostConfig::hypar());
        let layer = fc_layer();
        let env = hetero_env();
        let cost = model.layer_cost(&layer, PartitionType::TypeI, Ratio::EQUAL, &env, ShardScales::full());
        // Both groups fetch A(W) = 100·200 elements.
        assert_eq!(cost.a, 20_000.0);
        assert_eq!(cost.b, 20_000.0);
        assert_eq!(model.scalarize(cost), 40_000.0);
        // Ratio-independent and hardware-independent.
        let cost2 = model.layer_cost(&layer, PartitionType::TypeI, Ratio::new(0.9).unwrap(), &env, ShardScales::full());
        assert_eq!(cost.a, cost2.a);
    }

    #[test]
    fn edge_cost_zero_for_free_conversions() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        for (prev, next) in [
            (PartitionType::TypeI, PartitionType::TypeI),
            (PartitionType::TypeII, PartitionType::TypeIII),
            (PartitionType::TypeIII, PartitionType::TypeII),
        ] {
            let c = model.edge_cost(prev, Ratio::EQUAL, next, Ratio::EQUAL, 1000, 1000, &env);
            assert_eq!(c.makespan(), 0.0, "{prev}->{next}");
        }
    }

    #[test]
    fn edge_cost_uses_each_groups_own_bandwidth() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        // I->III at equal ratio: both groups fetch β·A(F) = α·A(F) elems,
        // but v3 (group b) fetches at twice the bandwidth.
        let c = model.edge_cost(
            PartitionType::TypeI,
            Ratio::EQUAL,
            PartitionType::TypeIII,
            Ratio::EQUAL,
            1000,
            1000,
            &env,
        );
        assert!(c.a > c.b);
        assert!((c.a / c.b - 2.0).abs() < 1e-9);
    }

    #[test]
    fn skip_first_backward_reduces_cost() {
        let layer = fc_layer();
        let env = hetero_env();
        let with = CostModel::new(CostConfig::default());
        let without = CostModel::new(CostConfig {
            skip_first_backward: true,
            ..CostConfig::default()
        });
        let c_with = with.layer_cost(&layer, PartitionType::TypeI, Ratio::EQUAL, &env, ShardScales::full());
        let c_without = without.layer_cost(&layer, PartitionType::TypeI, Ratio::EQUAL, &env, ShardScales::full());
        assert!(c_without.a < c_with.a);
    }

    #[test]
    fn roofline_never_reduces_cost() {
        let layer = fc_layer();
        let env = hetero_env();
        let plain = CostModel::new(CostConfig::default());
        let roofline = CostModel::new(CostConfig {
            roofline: true,
            ..CostConfig::default()
        });
        for t in PartitionType::ALL {
            let c0 = plain.layer_cost(&layer, t, Ratio::EQUAL, &env, ShardScales::full());
            let c1 = roofline.layer_cost(&layer, t, Ratio::EQUAL, &env, ShardScales::full());
            assert!(c1.a >= c0.a && c1.b >= c0.b, "{t}");
        }
    }

    #[test]
    fn pair_cost_algebra() {
        let c = PairCost { a: 1.0, b: 2.0 };
        assert_eq!(c.makespan(), 2.0);
        assert_eq!(c.total(), 3.0);
        let s = c.plus(PairCost { a: 0.5, b: 0.5 });
        assert_eq!(s.a, 1.5);
        assert_eq!(s.b, 2.5);
        assert_eq!(PairCost::zero().makespan(), 0.0);
    }

    #[test]
    fn swapping_groups_mirrors_the_costs() {
        // Relabeling the two groups (swap caps/links, complement the
        // ratio) must swap the per-group costs exactly.
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let swapped = PairEnv {
            caps_a: env.caps_b,
            caps_b: env.caps_a,
            link_a: env.link_b,
            link_b: env.link_a,
        };
        let layer = fc_layer();
        for t in PartitionType::ALL {
            for alpha in [0.2, 0.5, 0.9] {
                let r = Ratio::new(alpha).unwrap();
                let c = model.layer_cost(&layer, t, r, &env, ShardScales::full());
                let m = model.layer_cost(&layer, t, r.complement(), &swapped, ShardScales::full());
                assert!((c.a - m.b).abs() < 1e-18, "{t} {alpha}");
                assert!((c.b - m.a).abs() < 1e-18, "{t} {alpha}");
            }
        }
    }

    #[test]
    fn scaled_costs_shrink_proportionally() {
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        let layer = fc_layer();
        let half = ShardScales {
            f_in: 0.5,
            f_out: 0.5,
            weight: 0.5,
            flops: 0.5,
        };
        for t in PartitionType::ALL {
            let full = model.layer_cost(&layer, t, Ratio::EQUAL, &env, ShardScales::full());
            let scaled = model.layer_cost(&layer, t, Ratio::EQUAL, &env, half);
            // Every term scales by 1/2 under a uniform half shard.
            assert!((scaled.a - full.a / 2.0).abs() < 1e-15, "{t}");
            assert!((scaled.b - full.b / 2.0).abs() < 1e-15, "{t}");
        }
    }

    #[test]
    fn attention_stage_raises_the_o_projection_cost() {
        let view = NetworkBuilder::new("t", FeatureShape::seq(8, 32, 64))
            .multi_head_attention("attn", 8, 64, 8)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let o = view.layers().find(|l| l.attn().is_some()).unwrap().clone();
        // A plain FC of identical geometry (8·8 = 64 → 64 on the same
        // sequence): same matmuls, no stage.
        let plain = NetworkBuilder::new("p", FeatureShape::seq(8, 32, 64))
            .linear("fc", 64, 64)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .next()
            .unwrap()
            .clone();
        assert_eq!(plain.weight(), o.weight());
        let model = CostModel::new(CostConfig::default());
        let env = hetero_env();
        for t in PartitionType::ALL {
            let with = model.layer_cost(&o, t, Ratio::EQUAL, &env, ShardScales::full());
            let without = model.layer_cost(&plain, t, Ratio::EQUAL, &env, ShardScales::full());
            assert!(
                with.a > without.a && with.b > without.b,
                "{t}: stage must add cost"
            );
        }
        // Under Type-I the stage also communicates; under II/III it is
        // compute-only, so the CommOnly proxy sees it only for Type-I.
        let proxy = CostModel::new(CostConfig::hypar());
        let c1 = proxy.layer_cost(&o, PartitionType::TypeI, Ratio::EQUAL, &env, ShardScales::full());
        let p1 = proxy.layer_cost(&plain, PartitionType::TypeI, Ratio::EQUAL, &env, ShardScales::full());
        assert!(c1.total() > p1.total());
        let c2 = proxy.layer_cost(&o, PartitionType::TypeII, Ratio::EQUAL, &env, ShardScales::full());
        let p2 = proxy.layer_cost(&plain, PartitionType::TypeII, Ratio::EQUAL, &env, ShardScales::full());
        assert_eq!(c2.total(), p2.total());
    }

    #[test]
    fn flops_share_matches_v2_v3_ratio() {
        let env = hetero_env();
        // 180 / (180 + 420) = 0.3
        assert!((env.flops_share_a() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn checked_scalarize_rejects_non_finite_costs() {
        let model = CostModel::new(CostConfig::default());
        let good = PairCost { a: 1.0, b: 2.0 };
        assert!(good.is_finite());
        assert_eq!(model.checked_scalarize(good, "layer conv1"), Ok(2.0));

        for bad in [
            PairCost { a: f64::NAN, b: 1.0 },
            PairCost { a: 1.0, b: f64::INFINITY },
            PairCost { a: f64::NEG_INFINITY, b: f64::NAN },
        ] {
            assert!(!bad.is_finite());
            let err = model
                .checked_scalarize(bad, "layer conv1 Type-II")
                .expect_err("non-finite must be rejected");
            assert!(err.context.contains("conv1"));
            assert!(err.to_string().contains("non-finite"));
        }
    }
}
