//! Communication volumes: Table 4 (intra-layer partial sums) and Table 5
//! (inter-layer tensor conversions), generalized to per-layer ratios.
//!
//! The paper's Table 5 assumes both layers use the same ratio `α`; AccPar
//! as implemented here lets each layer carry its own ratio, so the
//! conversion volume depends on the *producing* layer's ratio (what a
//! group already holds) and the *consuming* layer's ratio (what it
//! needs). With equal ratios the formulas reduce exactly to Table 5 —
//! property-tested below.

use accpar_dnn::TrainLayer;
use accpar_partition::PartitionType;

/// Elements of the partial-sum tensor one group fetches from its sibling
/// during the type's psum phase (the numerator of Table 4).
///
/// * Type-I — `A(W_l)` (gradient partial sums),
/// * Type-II — `A(F_{l+1})` (forward partial sums),
/// * Type-III — `A(E_l) = A(F_l)` (backward partial sums).
///
/// Independent of the ratio: "intermediate results are accumulated
/// locally and partial sum tensors are accessed remotely".
#[must_use]
pub fn intra_psum_elems(ptype: PartitionType, layer: &TrainLayer) -> u64 {
    match ptype {
        PartitionType::TypeI => layer.weight().size(),
        PartitionType::TypeII => layer.out_fmap().size(),
        PartitionType::TypeIII => layer.in_fmap().size(),
    }
}

/// Full-tensor element count of the attention-stage exchange (the
/// unweighted scores → softmax → context stage carried by the `o`
/// projection's [`AttnStage`](accpar_dnn::AttnStage)), *before* scaling
/// by a group's share.
///
/// * Type-I — the token axis `batch·seq` is split, but every query token
///   attends over the *full* sequence, so the groups exchange their K and
///   V slices: `2·B·S·H·d_h` elements in total. Each group sends its own
///   token share of that tensor over its link, so callers scale this by
///   the group's `f_in` share (the token share) — the same shrink the
///   projections' feature tensors already use.
/// * Types II/III — the channel axis `heads·d_head` is split on whole
///   heads; scores, softmax and context are head-local, so the stage
///   needs no sibling data at all.
///
/// Layers without an attention stage return 0.
#[must_use]
pub fn attn_stage_elems(ptype: PartitionType, layer: &TrainLayer) -> u64 {
    let Some(stage) = layer.attn() else { return 0 };
    match ptype {
        PartitionType::TypeI => stage.kv_elems(layer.in_fmap().batch()),
        PartitionType::TypeII | PartitionType::TypeIII => 0,
    }
}

/// How much of a boundary tensor a group covers, in the leading-slice
/// convention (the first group always takes the leading slice of the
/// partitioned dimension; its sibling covers the complementary trailing
/// slice of the same structure).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Coverage {
    /// A `frac` slice of the batch (row) dimension.
    Rows(f64),
    /// A `frac` slice of the channel (column) dimension.
    Cols(f64),
    /// The whole tensor.
    Full,
}

/// Coverage of the boundary feature tensor `F` (output of layer `l`,
/// input of layer `l+1`) that a group *holds* after layer `l` of type
/// `t` finishes its forward phase (ratio = the group's share).
fn holds_f(t: PartitionType, ratio: f64) -> Coverage {
    match t {
        // Type-I: F_{l+1} produced split by batch.
        PartitionType::TypeI => Coverage::Rows(ratio),
        // Type-II: after the forward psum each group holds the full F_{l+1}.
        PartitionType::TypeII => Coverage::Full,
        // Type-III: F_{l+1} produced split by D_o (the boundary channels).
        PartitionType::TypeIII => Coverage::Cols(ratio),
    }
}

/// Coverage of the boundary feature tensor a group *needs* as layer
/// `l+1`'s input under type `t`.
fn needs_f(t: PartitionType, ratio: f64) -> Coverage {
    match t {
        // Type-I: consumes its batch slice of F_l.
        PartitionType::TypeI => Coverage::Rows(ratio),
        // Type-II: consumes its D_i slice (the boundary channels).
        PartitionType::TypeII => Coverage::Cols(ratio),
        // Type-III: F_l is replicated — needs the whole tensor.
        PartitionType::TypeIII => Coverage::Full,
    }
}

/// Coverage of the boundary error tensor `E` that a group *holds* after
/// layer `l+1` of type `t` finishes its backward phase. By the paper's
/// constraint (`F` and `E` partitioned alike), this mirrors [`needs_f`]:
/// Type-III's backward psum leaves the full `E_l` on both groups.
fn holds_e(t: PartitionType, ratio: f64) -> Coverage {
    match t {
        PartitionType::TypeI => Coverage::Rows(ratio),
        PartitionType::TypeII => Coverage::Cols(ratio),
        PartitionType::TypeIII => Coverage::Full,
    }
}

/// Coverage of the boundary error tensor layer `l` of type `t` *needs*
/// (its input error `E_{l+1}`); mirrors [`holds_f`] — Type-II replicates
/// `E_{l+1}`.
fn needs_e(t: PartitionType, ratio: f64) -> Coverage {
    match t {
        PartitionType::TypeI => Coverage::Rows(ratio),
        PartitionType::TypeII => Coverage::Full,
        PartitionType::TypeIII => Coverage::Cols(ratio),
    }
}

/// Fraction of the tensor that must be fetched remotely: `need \ hold` in
/// the aligned-slice convention.
fn missing(hold: Coverage, need: Coverage) -> f64 {
    match (hold, need) {
        (Coverage::Full, _) => 0.0,
        // Same dimension: slices are aligned, overlap is the smaller.
        (Coverage::Rows(h), Coverage::Rows(n)) | (Coverage::Cols(h), Coverage::Cols(n)) => {
            (n - h).max(0.0)
        }
        // Orthogonal slices: the held rows cover an `h` fraction of every
        // column, so `(1−h)` of the needed `n`-fraction is remote.
        (Coverage::Rows(h), Coverage::Cols(n)) | (Coverage::Cols(h), Coverage::Rows(n)) => {
            (1.0 - h) * n
        }
        (Coverage::Rows(h), Coverage::Full) | (Coverage::Cols(h), Coverage::Full) => 1.0 - h,
    }
}

/// Inter-layer conversion volumes (in *elements*) fetched remotely by
/// each group across the boundary between layer `l` (type `prev`, first
/// group's ratio `alpha_prev`) and layer `l+1` (type `next`, ratio
/// `alpha_next`).
///
/// `f_elems` / `e_elems` are `A(F_{l+1})` / `A(E_{l+1})` of the boundary
/// (equal in the paper; kept separate for clarity). Returns
/// `(group_a_elems, group_b_elems)` covering both the forward-direction
/// `F` conversion and the backward-direction `E` conversion.
#[must_use]
pub fn inter_conversion_elems(
    prev: PartitionType,
    alpha_prev: f64,
    next: PartitionType,
    alpha_next: f64,
    f_elems: u64,
    e_elems: u64,
) -> (f64, f64) {
    let (f, e) = inter_conversion_split(prev, alpha_prev, next, alpha_next, f_elems, e_elems);
    (f.0 + e.0, f.1 + e.1)
}

/// Like [`inter_conversion_elems`], but keeping the forward-direction `F`
/// conversion and the backward-direction `E` conversion separate:
/// returns `((f_a, f_b), (e_a, e_b))`. The simulator charges the `F` part
/// at the start of the consumer's forward phase and the `E` part at the
/// start of the producer's backward phase.
#[must_use]
pub fn inter_conversion_split(
    prev: PartitionType,
    alpha_prev: f64,
    next: PartitionType,
    alpha_next: f64,
    f_elems: u64,
    e_elems: u64,
) -> ((f64, f64), (f64, f64)) {
    let beta_prev = 1.0 - alpha_prev;
    let beta_next = 1.0 - alpha_next;
    let f = (
        missing(holds_f(prev, alpha_prev), needs_f(next, alpha_next)) * f_elems as f64,
        missing(holds_f(prev, beta_prev), needs_f(next, beta_next)) * f_elems as f64,
    );
    let e = (
        missing(holds_e(next, alpha_next), needs_e(prev, alpha_prev)) * e_elems as f64,
        missing(holds_e(next, beta_next), needs_e(prev, beta_prev)) * e_elems as f64,
    );
    (f, e)
}

/// Conversion volumes (in *elements*) needed to re-lay-out a block
/// branch's output into the block's junction state (§5.2): the branch's
/// last layer (type `from`) produced the join tensor in its own layout;
/// the junction pseudo-state `to` requires the layout a type-`to` layer
/// would have produced. Mirrored for the error direction: the junction
/// forwards the error laid out as a type-`to` layer would need it, while
/// the branch's last layer needs its own `needs_e` layout.
///
/// Identity (empty) branches use this with `from` = the fork state.
/// When `from == to` and the ratios agree the volume is zero — a branch
/// exiting in the junction's own state costs nothing, which is what makes
/// the junction formulation collapse to plain chain costs on single-path
/// segments.
#[must_use]
pub fn relayout_elems(
    from: PartitionType,
    alpha_from: f64,
    to: PartitionType,
    alpha_to: f64,
    f_elems: u64,
    e_elems: u64,
) -> (f64, f64) {
    let beta_from = 1.0 - alpha_from;
    let beta_to = 1.0 - alpha_to;
    let a = missing(holds_f(from, alpha_from), holds_f(to, alpha_to)) * f_elems as f64
        + missing(needs_e(to, alpha_to), needs_e(from, alpha_from)) * e_elems as f64;
    let b = missing(holds_f(from, beta_from), holds_f(to, beta_to)) * f_elems as f64
        + missing(needs_e(to, beta_to), needs_e(from, beta_from)) * e_elems as f64;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accpar_dnn::NetworkBuilder;
    use accpar_tensor::FeatureShape;
    use PartitionType::{TypeI, TypeII, TypeIII};

    fn fc_layer() -> TrainLayer {
        NetworkBuilder::new("t", FeatureShape::fc(8, 20))
            .linear("fc", 20, 30)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .next()
            .unwrap()
            .clone()
    }

    #[test]
    fn table_4_psum_tensors() {
        let l = fc_layer();
        assert_eq!(intra_psum_elems(TypeI, &l), 20 * 30); // A(W)
        assert_eq!(intra_psum_elems(TypeII, &l), 8 * 30); // A(F_{l+1})
        assert_eq!(intra_psum_elems(TypeIII, &l), 8 * 20); // A(E_l)
    }

    #[test]
    fn attention_stage_exchanges_kv_only_under_type_i() {
        let view = NetworkBuilder::new("t", FeatureShape::seq(4, 16, 32))
            .multi_head_attention("attn", 4, 32, 8)
            .build()
            .unwrap()
            .train_view()
            .unwrap();
        let o = view.layers().find(|l| l.attn().is_some()).unwrap().clone();
        // 2 · B · S · H · d_h over the token axis.
        assert_eq!(attn_stage_elems(TypeI, &o), 2 * 4 * 16 * 4 * 8);
        // Head-local under channel splits.
        assert_eq!(attn_stage_elems(TypeII, &o), 0);
        assert_eq!(attn_stage_elems(TypeIII, &o), 0);
        // The q projection carries no stage.
        let q = view.layers().next().unwrap().clone();
        assert_eq!(attn_stage_elems(TypeI, &q), 0);
    }

    /// Table 5 with equal ratios `α` on both layers, for group a
    /// (the `b_i` denominator is applied by the caller).
    fn table5_expected(prev: PartitionType, next: PartitionType, alpha: f64, af: f64, ae: f64) -> f64 {
        let beta = 1.0 - alpha;
        match (prev, next) {
            (TypeI, TypeI) | (TypeII, TypeIII) | (TypeIII, TypeII) => 0.0,
            (TypeI, TypeII) | (TypeIII, TypeI) => alpha * beta * (af + ae),
            (TypeI, TypeIII) | (TypeIII, TypeIII) => beta * af,
            (TypeII, TypeI) | (TypeII, TypeII) => beta * ae,
        }
    }

    #[test]
    fn table_5_reproduced_at_equal_ratios() {
        let (af, ae) = (240.0, 240.0);
        for prev in PartitionType::ALL {
            for next in PartitionType::ALL {
                for alpha in [0.5, 0.3, 0.8] {
                    let (got, _) =
                        inter_conversion_elems(prev, alpha, next, alpha, 240, 240);
                    let want = table5_expected(prev, next, alpha, af, ae);
                    assert!(
                        (got - want).abs() < 1e-9,
                        "{prev}->{next} alpha={alpha}: got {got}, want {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn group_b_mirrors_group_a_under_complement() {
        for prev in PartitionType::ALL {
            for next in PartitionType::ALL {
                let (a, _) = inter_conversion_elems(prev, 0.3, next, 0.3, 100, 100);
                let (_, b) = inter_conversion_elems(prev, 0.7, next, 0.7, 100, 100);
                assert!((a - b).abs() < 1e-9, "{prev}->{next}");
            }
        }
    }

    #[test]
    fn type_i_to_type_i_with_unequal_ratios_spills() {
        // Same type but the batch slice grows between layers: the growth
        // must be fetched.
        let (a, b) = inter_conversion_elems(TypeI, 0.4, TypeI, 0.6, 100, 100);
        // F: needs 0.6, holds 0.4 -> 0.2 of A(F). E: holds 0.6, needs 0.4 -> 0.
        assert!((a - 20.0).abs() < 1e-9);
        // Group b: F needs 0.4, holds 0.6 -> 0; E: holds 0.4, needs 0.6 -> 20.
        assert!((b - 20.0).abs() < 1e-9);
    }

    #[test]
    fn paper_example_c_type_i_to_type_iii() {
        // §4.1.2: inter-layer amount is β·A(F_{l+1}) for group i, and
        // α·A(F_{l+1}) for group j.
        let (a, b) = inter_conversion_elems(TypeI, 0.75, TypeIII, 0.75, 1000, 1000);
        assert!((a - 250.0).abs() < 1e-9);
        assert!((b - 750.0).abs() < 1e-9);
    }

    #[test]
    fn volumes_are_bounded_by_both_tensors() {
        for &prev in &PartitionType::ALL {
            for &next in &PartitionType::ALL {
                for pa in 0..=10 {
                    for na in 0..=10 {
                        let ap = f64::from(pa) / 10.0;
                        let an = f64::from(na) / 10.0;
                        let (a, b) = inter_conversion_elems(prev, ap, next, an, 100, 100);
                        assert!(a >= 0.0 && b >= 0.0);
                        assert!(a <= 200.0 + 1e-9);
                        assert!(b <= 200.0 + 1e-9);
                    }
                }
            }
        }
    }

    #[test]
    fn identical_types_and_ratios_never_convert_f_and_e_together_beyond_table5() {
        // Diagonal entries of Table 5: I->I is 0; II->II is β·A(E);
        // III->III is β·A(F).
        for &t in &PartitionType::ALL {
            for step in 0..=40 {
                let alpha = f64::from(step) / 40.0;
                let (a, _) = inter_conversion_elems(t, alpha, t, alpha, 100, 100);
                let want = match t {
                    TypeI => 0.0,
                    TypeII | TypeIII => (1.0 - alpha) * 100.0,
                };
                assert!((a - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn relayout_to_same_state_is_free() {
        for t in PartitionType::ALL {
            for alpha in [0.25, 0.5, 0.9] {
                let (a, b) = relayout_elems(t, alpha, t, alpha, 100, 100);
                assert_eq!((a, b), (0.0, 0.0), "{t} {alpha}");
            }
        }
    }

    #[test]
    fn relayout_from_full_producer_is_free_in_f() {
        // Type-II holds the full F after its psum: re-laying it out into
        // any junction state moves no F data.
        for t in PartitionType::ALL {
            let (a, _) = relayout_elems(TypeII, 0.5, t, 0.5, 100, 0);
            assert_eq!(a, 0.0, "{t}");
        }
    }

    #[test]
    fn relayout_rows_to_full_fetches_complement() {
        // Type-I rows → Type-II junction (holds full F after psum):
        // each group fetches the complement of its row slice.
        let (a, b) = relayout_elems(TypeI, 0.25, TypeII, 0.25, 100, 0);
        assert!((a - 75.0).abs() < 1e-9);
        assert!((b - 25.0).abs() < 1e-9);
    }
}
