//! The AccPar cost model (§4 of the paper).
//!
//! AccPar optimizes *overall cost* — unlike HyPar, which minimizes
//! communication alone — by combining:
//!
//! * **communication cost** `E_cm = A(T) / b_i` (Eq. 7): intra-layer
//!   partial-sum exchanges (Table 4) and inter-layer tensor conversions
//!   between partition types (Table 5), in [`comm`];
//! * **computation cost** `E_cp = α·C(T₁×T₂) / c_i` (Eq. 8) with the FLOP
//!   counts of Table 6 and their convolutional extension (§4.3), in
//!   [`compute`];
//! * the **partition-ratio solver** of §5.3 (Eq. 10) that balances the two
//!   groups of a heterogeneous pair, in [`ratio`].
//!
//! [`CostModel`] packages these behind one interface parameterized by a
//! [`CostConfig`]; [`PairEnv`] carries the two groups' capabilities
//! (computation density `c_i`, cut bandwidth `b_i`, memory bandwidth).
//!
//! # Example
//!
//! ```
//! use accpar_cost::{CostConfig, CostModel, PairEnv};
//! use accpar_dnn::zoo;
//! use accpar_hw::{AcceleratorArray, GroupTree};
//! use accpar_partition::{PartitionType, Ratio, ShardScales};
//!
//! let net = zoo::alexnet(512)?;
//! let view = net.train_view()?;
//! let layer = view.layers().next().unwrap();
//!
//! let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(128, 128), 1)?;
//! let env = PairEnv::from_node(tree.root()).unwrap();
//!
//! let model = CostModel::new(CostConfig::default());
//! let cost = model.layer_cost(layer, PartitionType::TypeI, Ratio::EQUAL, &env, ShardScales::full());
//! // Under an equal split the slower v2 group dominates the makespan.
//! assert!(cost.a > cost.b);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod comm;
pub mod compute;
mod model;
pub mod ratio;

pub use cache::{layer_ratio_cost, CostCache, LayerSig};
pub use model::{CostConfig, CostModel, NonFiniteCost, Objective, PairCost, PairEnv};
pub use ratio::RatioSolver;
