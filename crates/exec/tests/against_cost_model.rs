//! The decisive validation: the communication the oracle *measures* while
//! actually executing partitioned training equals, element for element,
//! the volumes the analytic cost model (`accpar-cost`, Tables 4 and 5)
//! *predicts* — for every type pair and every split.

use accpar_cost::comm::inter_conversion_split;
use accpar_exec::{partitioned, reference, LayerSpec, StepSpec};
use accpar_partition::PartitionType;

use PartitionType::{TypeI, TypeII, TypeIII};

/// Expected intra-layer psum volume per device (Table 4 numerators).
fn expected_intra(batch: usize, l: &LayerSpec) -> u64 {
    (match l.ptype {
        TypeI => l.d_in * l.d_out,   // A(W)
        TypeII => batch * l.d_out,   // A(F_{l+1})
        TypeIII => batch * l.d_in,   // A(E_l)
    }) as u64
}

/// Runs a two-layer chain and checks every meter bucket against the
/// analytic predictions.
fn check_two_layer(batch: usize, mid: usize, spec0: LayerSpec, spec1: LayerSpec) {
    let spec = StepSpec::new(batch, vec![spec0, spec1]);
    let want = reference::run(&spec);
    let (got, meter) = partitioned::run(&spec);
    assert!(want.approx_eq(&got, 1e-9), "numerics diverged: {spec:?}");

    // Table 4: one psum exchange per layer per device, ratio-independent.
    for (l, layer) in spec.layers.iter().enumerate() {
        let expect = expected_intra(batch, layer);
        assert_eq!(
            meter.intra[l],
            [expect, expect],
            "intra layer {l} ({})",
            layer.ptype
        );
    }

    // Table 5: the boundary conversions, with each layer's own fractional
    // ratio (the generalization the cost model implements).
    let a0 = spec0.split as f64 / spec0.dim_len(batch) as f64;
    let a1 = spec1.split as f64 / spec1.dim_len(batch) as f64;
    let boundary = (batch * mid) as u64;
    let ((f_a, f_b), (e_a, e_b)) =
        inter_conversion_split(spec0.ptype, a0, spec1.ptype, a1, boundary, boundary);

    // Forward-direction conversion is charged when layer 1 materializes
    // its input; backward-direction when layer 0 materializes its error.
    assert_eq!(
        meter.inter_f[1],
        [f_a.round() as u64, f_b.round() as u64],
        "F conversion {} -> {}",
        spec0.ptype,
        spec1.ptype
    );
    assert_eq!(
        meter.inter_e[0],
        [e_a.round() as u64, e_b.round() as u64],
        "E conversion {} -> {}",
        spec0.ptype,
        spec1.ptype
    );
    // No conversion is ever charged at the network edges.
    assert_eq!(meter.inter_f[0], [0, 0]);
    assert_eq!(meter.inter_e[1], [0, 0]);
}

#[test]
fn all_nine_type_pairs_match_table5_at_equal_splits() {
    let (batch, d0, mid, d1) = (8usize, 6usize, 4usize, 10usize);
    for t0 in [TypeI, TypeII, TypeIII] {
        for t1 in [TypeI, TypeII, TypeIII] {
            let s0 = LayerSpec::new(d0, mid, t0, t0_dim(batch, d0, mid, t0) / 2);
            let s1 = LayerSpec::new(mid, d1, t1, t0_dim(batch, mid, d1, t1) / 2);
            check_two_layer(batch, mid, s0, s1);
        }
    }
}

fn t0_dim(batch: usize, d_in: usize, d_out: usize, t: PartitionType) -> usize {
    match t {
        TypeI => batch,
        TypeII => d_in,
        TypeIII => d_out,
    }
}

#[test]
fn unequal_splits_match_the_generalized_formulas() {
    // Per-layer ratios differ: the paper's Table 5 assumes equal α; our
    // generalization must still match execution exactly.
    let (batch, d0, mid, d1) = (10usize, 7usize, 6usize, 9usize);
    for t0 in [TypeI, TypeII, TypeIII] {
        for t1 in [TypeI, TypeII, TypeIII] {
            for s0 in [1, 4] {
                for s1 in [2, 5] {
                    let l0 = LayerSpec::new(d0, mid, t0, s0.min(t0_dim(batch, d0, mid, t0) - 1));
                    let l1 = LayerSpec::new(mid, d1, t1, s1.min(t0_dim(batch, mid, d1, t1) - 1));
                    check_two_layer(batch, mid, l0, l1);
                }
            }
        }
    }
}

#[test]
fn random_chains_match_reference_and_predictions() {
    // Seeded xorshift64 case stream — deterministic replacement for the
    // previous property-test generator.
    let mut state = 0x000e_1ec7_ab1e_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..48 {
        let batch = 2 + (next() % 6) as usize;
        let n_dims = 3 + (next() % 2) as usize;
        let dims: Vec<usize> = (0..n_dims).map(|_| 2 + (next() % 6) as usize).collect();
        let types: Vec<usize> = (0..4).map(|_| (next() % 3) as usize).collect();
        let splits: Vec<usize> = (0..4).map(|_| 1 + (next() % 6) as usize).collect();

        let mut layers = Vec::new();
        for (i, pair) in dims.windows(2).enumerate() {
            let t = [TypeI, TypeII, TypeIII][types[i % types.len()]];
            let dim = t0_dim(batch, pair[0], pair[1], t);
            let split = 1 + splits[i % splits.len()] % (dim - 1).max(1);
            layers.push(LayerSpec::new(pair[0], pair[1], t, split.min(dim - 1)));
        }
        let spec = StepSpec::new(batch, layers);
        let want = reference::run(&spec);
        let (got, meter) = partitioned::run(&spec);
        assert!(want.approx_eq(&got, 1e-9));

        // Table 4 for every layer.
        for (l, layer) in spec.layers.iter().enumerate() {
            let expect = expected_intra(batch, layer);
            assert_eq!(meter.intra[l], [expect, expect]);
        }
        // Table 5 for every interior boundary.
        for l in 1..spec.layers.len() {
            let (p, c) = (spec.layers[l - 1], spec.layers[l]);
            let ap = p.split as f64 / p.dim_len(batch) as f64;
            let ac = c.split as f64 / c.dim_len(batch) as f64;
            let boundary = (batch * c.d_in) as u64;
            let ((f_a, f_b), (e_a, e_b)) =
                inter_conversion_split(p.ptype, ap, c.ptype, ac, boundary, boundary);
            assert_eq!(
                meter.inter_f[l],
                [f_a.round() as u64, f_b.round() as u64],
                "F conversion at boundary {l}"
            );
            assert_eq!(
                meter.inter_e[l - 1],
                [e_a.round() as u64, e_b.round() as u64],
                "E conversion at boundary {l}"
            );
        }
    }
}
