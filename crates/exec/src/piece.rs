//! A device's *piece* of a shared tensor: which slice it holds, in global
//! coordinates, plus the data. Materializing a differently shaped need
//! fetches the missing rectangle from the sibling device — the executable
//! form of the paper's Figure 2 "black tensor" conversions.

use crate::matrix::Matrix;
use std::ops::Range;

/// The region of the full tensor a piece covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Cover {
    /// The whole tensor.
    Full,
    /// A contiguous row range (all columns).
    Rows(Range<usize>),
    /// A contiguous column range (all rows).
    Cols(Range<usize>),
}

/// A slice of a logically shared `rows × cols` tensor held by one device.
#[derive(Debug, Clone, PartialEq)]
pub struct Piece {
    /// Full-tensor shape.
    shape: (usize, usize),
    /// Which region this piece covers.
    cover: Cover,
    /// The covered data (dimensions match the cover).
    data: Matrix,
}

impl Piece {
    /// A piece covering the whole tensor.
    ///
    /// # Panics
    ///
    /// Panics if `data`'s shape disagrees with itself (never).
    #[must_use]
    pub fn full(data: Matrix) -> Self {
        let shape = (data.rows(), data.cols());
        Self {
            shape,
            cover: Cover::Full,
            data,
        }
    }

    /// A piece covering `rows` of a `(full_rows, cols)` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the data shape does not match the cover.
    #[must_use]
    pub fn rows(full_rows: usize, rows: Range<usize>, data: Matrix) -> Self {
        assert_eq!(data.rows(), rows.len(), "row-piece height mismatch");
        assert!(rows.end <= full_rows, "row range exceeds the tensor");
        Self {
            shape: (full_rows, data.cols()),
            cover: Cover::Rows(rows),
            data,
        }
    }

    /// A piece covering `cols` of a `(rows, full_cols)` tensor.
    ///
    /// # Panics
    ///
    /// Panics if the data shape does not match the cover.
    #[must_use]
    pub fn cols(full_cols: usize, cols: Range<usize>, data: Matrix) -> Self {
        assert_eq!(data.cols(), cols.len(), "col-piece width mismatch");
        assert!(cols.end <= full_cols, "col range exceeds the tensor");
        Self {
            shape: (data.rows(), full_cols),
            cover: Cover::Cols(cols),
            data,
        }
    }

    /// The full tensor's shape.
    #[must_use]
    pub const fn shape(&self) -> (usize, usize) {
        self.shape
    }

    /// The covered region.
    #[must_use]
    pub const fn cover(&self) -> &Cover {
        &self.cover
    }

    /// The covered data.
    #[must_use]
    pub const fn data(&self) -> &Matrix {
        &self.data
    }

    /// Whether the piece covers the given rectangle.
    #[must_use]
    pub fn covers(&self, rows: &Range<usize>, cols: &Range<usize>) -> bool {
        let in_cover = match &self.cover {
            Cover::Full => true,
            Cover::Rows(r) => r.start <= rows.start && rows.end <= r.end,
            Cover::Cols(c) => c.start <= cols.start && cols.end <= c.end,
        };
        in_cover && rows.end <= self.shape.0 && cols.end <= self.shape.1
    }

    /// Extracts a rectangle (global coordinates).
    ///
    /// # Panics
    ///
    /// Panics if the piece does not cover the rectangle.
    #[must_use]
    pub fn extract(&self, rows: Range<usize>, cols: Range<usize>) -> Matrix {
        assert!(
            self.covers(&rows, &cols),
            "piece {:?} does not cover rows {rows:?} cols {cols:?}",
            self.cover
        );
        let (r0, c0) = match &self.cover {
            Cover::Full => (0, 0),
            Cover::Rows(r) => (r.start, 0),
            Cover::Cols(c) => (0, c.start),
        };
        Matrix::from_fn(rows.len(), cols.len(), |r, c| {
            self.data.at(rows.start + r - r0, cols.start + c - c0)
        })
    }

    /// Materializes the `need` cover from this piece, fetching whatever is
    /// missing from `sibling` and returning the new piece together with
    /// the number of elements fetched remotely.
    ///
    /// # Panics
    ///
    /// Panics if this piece and the sibling together cannot cover the
    /// need (cannot happen for complementary device pieces).
    #[must_use]
    pub fn materialize(&self, need: &Cover, sibling: &Piece) -> (Piece, u64) {
        let (full_r, full_c) = self.shape;
        let (need_rows, need_cols) = match need {
            Cover::Full => (0..full_r, 0..full_c),
            Cover::Rows(r) => (r.clone(), 0..full_c),
            Cover::Cols(c) => (0..full_r, c.clone()),
        };
        // Fast path: we already cover the need.
        if self.covers(&need_rows, &need_cols) {
            let data = self.extract(need_rows, need_cols);
            return (Self::from_cover(self.shape, need.clone(), data), 0);
        }
        // Assemble the needed rectangle cell by cell, preferring local
        // data; count remote cells. (The oracle favors obviousness over
        // speed.)
        let fetched = std::cell::Cell::new(0u64);
        let data = Matrix::from_fn(need_rows.len(), need_cols.len(), |r, c| {
            let (gr, gc) = (need_rows.start + r, need_cols.start + c);
            if self.covers(&(gr..gr + 1), &(gc..gc + 1)) {
                self.extract(gr..gr + 1, gc..gc + 1).at(0, 0)
            } else {
                fetched.set(fetched.get() + 1);
                sibling.extract(gr..gr + 1, gc..gc + 1).at(0, 0)
            }
        });
        (Self::from_cover(self.shape, need.clone(), data), fetched.get())
    }

    fn from_cover(shape: (usize, usize), cover: Cover, data: Matrix) -> Self {
        match cover {
            Cover::Full => {
                assert_eq!((data.rows(), data.cols()), shape);
                Self {
                    shape,
                    cover: Cover::Full,
                    data,
                }
            }
            Cover::Rows(r) => Self::rows(shape.0, r, data),
            Cover::Cols(c) => Self::cols(shape.1, c, data),
        }
    }

    /// Reassembles the full tensor from two complementary pieces.
    ///
    /// # Panics
    ///
    /// Panics if the union of the two pieces does not cover the tensor.
    #[must_use]
    pub fn reassemble(a: &Piece, b: &Piece) -> Matrix {
        assert_eq!(a.shape, b.shape, "pieces must share the tensor shape");
        let (rows, cols) = a.shape;
        Matrix::from_fn(rows, cols, |r, c| {
            if a.covers(&(r..r + 1), &(c..c + 1)) {
                a.extract(r..r + 1, c..c + 1).at(0, 0)
            } else {
                b.extract(r..r + 1, c..c + 1).at(0, 0)
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_matrix() -> Matrix {
        Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as f64)
    }

    fn row_pieces(split: usize) -> (Piece, Piece) {
        let m = full_matrix();
        (
            Piece::rows(4, 0..split, m.row_slice(0..split)),
            Piece::rows(4, split..4, m.row_slice(split..4)),
        )
    }

    #[test]
    fn covers_and_extract() {
        let (a, b) = row_pieces(2);
        assert!(a.covers(&(0..2), &(0..6)));
        assert!(!a.covers(&(0..3), &(0..6)));
        assert!(b.covers(&(2..4), &(3..5)));
        assert_eq!(a.extract(1..2, 2..3).at(0, 0), 8.0);
        assert_eq!(b.extract(3..4, 5..6).at(0, 0), 23.0);
    }

    #[test]
    fn materialize_full_from_rows_fetches_complement() {
        let (a, b) = row_pieces(1);
        let (full, fetched) = a.materialize(&Cover::Full, &b);
        assert_eq!(fetched, 3 * 6);
        assert_eq!(full.data(), &full_matrix());
        // The sibling fetches the mirror amount.
        let (_, fetched_b) = b.materialize(&Cover::Full, &a);
        assert_eq!(fetched_b, 6);
    }

    #[test]
    fn materialize_same_cover_is_free() {
        let (a, b) = row_pieces(2);
        let (p, fetched) = a.materialize(&Cover::Rows(0..2), &b);
        assert_eq!(fetched, 0);
        assert_eq!(p, a);
        // A sub-range of what we hold is also free.
        let (_, fetched) = a.materialize(&Cover::Rows(1..2), &b);
        assert_eq!(fetched, 0);
    }

    #[test]
    fn materialize_cols_from_rows_counts_cross_fetch() {
        let m = full_matrix();
        let a = Piece::rows(4, 0..1, m.row_slice(0..1));
        let b = Piece::rows(4, 1..4, m.row_slice(1..4));
        // Need cols 0..2 (all 4 rows): we hold 1 row of them; fetch 3x2.
        let (p, fetched) = a.materialize(&Cover::Cols(0..2), &b);
        assert_eq!(fetched, 6);
        assert_eq!(p.data(), &m.col_slice(0..2));
    }

    #[test]
    fn full_pieces_never_fetch() {
        let m = full_matrix();
        let a = Piece::full(m.clone());
        let b = Piece::full(m.clone());
        for need in [Cover::Full, Cover::Rows(1..3), Cover::Cols(2..5)] {
            let (_, fetched) = a.materialize(&need, &b);
            assert_eq!(fetched, 0, "{need:?}");
        }
    }

    #[test]
    fn reassemble_from_col_pieces() {
        let m = full_matrix();
        let a = Piece::cols(6, 0..4, m.col_slice(0..4));
        let b = Piece::cols(6, 4..6, m.col_slice(4..6));
        assert_eq!(Piece::reassemble(&a, &b), m);
        assert_eq!(Piece::reassemble(&b, &a), m);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn extract_outside_cover_panics() {
        let (a, _) = row_pieces(2);
        let _ = a.extract(2..3, 0..1);
    }
}
