use std::fmt;

/// Communication meter: every element fetched from the sibling device,
/// bucketed the way the paper's cost model buckets it.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommMeter {
    /// `intra[l][d]` — partial-sum elements device `d` fetched for layer
    /// `l` (Table 4 traffic).
    pub intra: Vec<[u64; 2]>,
    /// `inter_f[l][d]` — forward-direction conversion elements device `d`
    /// fetched while materializing layer `l`'s input (the `F` column of
    /// Table 5, charged on the boundary `l−1 → l`; index 0 is always
    /// zero — the input is pre-distributed).
    pub inter_f: Vec<[u64; 2]>,
    /// `inter_e[l][d]` — backward-direction conversion elements device
    /// `d` fetched while materializing layer `l`'s incoming error (the
    /// `E` column of Table 5, charged on the boundary `l → l+1`; the
    /// last layer's entry is always zero — the loss gradient arrives in
    /// the producing layout).
    pub inter_e: Vec<[u64; 2]>,
}

impl CommMeter {
    /// A meter for `n` layers.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            intra: vec![[0; 2]; n],
            inter_f: vec![[0; 2]; n],
            inter_e: vec![[0; 2]; n],
        }
    }

    /// Total elements moved between the devices.
    #[must_use]
    pub fn total_elems(&self) -> u64 {
        let sum = |v: &Vec<[u64; 2]>| v.iter().map(|d| d[0] + d[1]).sum::<u64>();
        sum(&self.intra) + sum(&self.inter_f) + sum(&self.inter_e)
    }

    /// Total intra-layer (partial-sum) elements.
    #[must_use]
    pub fn intra_elems(&self) -> u64 {
        self.intra.iter().map(|d| d[0] + d[1]).sum()
    }

    /// Total inter-layer (conversion) elements.
    #[must_use]
    pub fn inter_elems(&self) -> u64 {
        self.total_elems() - self.intra_elems()
    }
}

impl fmt::Display for CommMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} elements moved ({} intra-layer, {} inter-layer)",
            self.total_elems(),
            self.intra_elems(),
            self.inter_elems()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut m = CommMeter::new(2);
        m.intra[0] = [10, 20];
        m.inter_f[1] = [5, 0];
        m.inter_e[0] = [0, 7];
        assert_eq!(m.intra_elems(), 30);
        assert_eq!(m.inter_elems(), 12);
        assert_eq!(m.total_elems(), 42);
        assert!(m.to_string().contains("42"));
    }
}
