//! A minimal dense `f64` matrix — just enough linear algebra for the
//! semantics oracle.

use std::fmt;
use std::ops::Range;

/// Cache-blocking tile edge for `matmul` and `transpose`. 32×32 `f64`
/// tiles (8 KiB) fit comfortably in L1 alongside the output stripe.
const TILE: usize = 32;

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a function of `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Total elements.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Never true (dimensions are positive), provided for convention.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Matrix product `self × other`, blocked over `(row, inner)` tiles
    /// so each stripe of `other` stays cache-resident while the tile's
    /// rows sweep it. Within every output element the inner index still
    /// runs strictly ascending, so accumulation order — and thus the
    /// result, bit for bit — matches a naive triple loop.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree: {}x{} × {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r0 in (0..self.rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(self.rows);
            for k0 in (0..self.cols).step_by(TILE) {
                let k1 = (k0 + TILE).min(self.cols);
                for r in r0..r1 {
                    for k in k0..k1 {
                        let a = self.data[r * self.cols + k];
                        if a == 0.0 {
                            continue;
                        }
                        for c in 0..other.cols {
                            out.data[r * other.cols + c] += a * other.data[k * other.cols + c];
                        }
                    }
                }
            }
        }
        out
    }

    /// Transpose, copied tile by tile so both the source's row-major
    /// reads and the destination's column-scattered writes stay within
    /// one cache-resident block at a time.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r0 in (0..self.rows).step_by(TILE) {
            let r1 = (r0 + TILE).min(self.rows);
            for c0 in (0..self.cols).step_by(TILE) {
                let c1 = (c0 + TILE).min(self.cols);
                for r in r0..r1 {
                    for c in c0..c1 {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        out
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let mut out = self.clone();
        for (a, b) in out.data.iter_mut().zip(&other.data) {
            *a *= b;
        }
        out
    }

    /// Element-wise map.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = f(*v);
        }
        out
    }

    /// The sub-matrix of the given row range (all columns).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    #[must_use]
    pub fn row_slice(&self, range: Range<usize>) -> Matrix {
        assert!(range.start < range.end && range.end <= self.rows, "bad row range");
        Matrix::from_fn(range.len(), self.cols, |r, c| self.at(range.start + r, c))
    }

    /// The sub-matrix of the given column range (all rows).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    #[must_use]
    pub fn col_slice(&self, range: Range<usize>) -> Matrix {
        assert!(range.start < range.end && range.end <= self.cols, "bad col range");
        Matrix::from_fn(self.rows, range.len(), |r, c| self.at(r, range.start + c))
    }

    /// Writes `piece` into this matrix starting at `(r0, c0)`.
    ///
    /// # Panics
    ///
    /// Panics if the piece does not fit.
    pub fn paste(&mut self, r0: usize, c0: usize, piece: &Matrix) {
        assert!(r0 + piece.rows <= self.rows && c0 + piece.cols <= self.cols, "piece does not fit");
        for r in 0..piece.rows {
            for c in 0..piece.cols {
                self.set(r0 + r, c0 + c, piece.at(r, c));
            }
        }
    }

    /// Stacks two matrices vertically.
    ///
    /// # Panics
    ///
    /// Panics if column counts differ.
    #[must_use]
    pub fn vstack(top: &Matrix, bottom: &Matrix) -> Matrix {
        assert_eq!(top.cols, bottom.cols, "column counts must agree");
        let mut out = Matrix::zeros(top.rows + bottom.rows, top.cols);
        out.paste(0, 0, top);
        out.paste(top.rows, 0, bottom);
        out
    }

    /// Stacks two matrices horizontally.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    #[must_use]
    pub fn hstack(left: &Matrix, right: &Matrix) -> Matrix {
        assert_eq!(left.rows, right.rows, "row counts must agree");
        let mut out = Matrix::zeros(left.rows, left.cols + right.cols);
        out.paste(0, 0, left);
        out.paste(0, left.cols, right);
        out
    }

    /// Approximate equality with absolute-or-relative tolerance `tol`.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        if (self.rows, self.cols) != (other.rows, other.cols) {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= tol * scale
        })
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}x{} matrix", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            for c in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self.at(r, c))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64); // [[0,1,2],[3,4,5]]
        let b = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f64); // [[0,1],[2,3],[4,5]]
        let p = a.matmul(&b);
        assert_eq!(p.at(0, 0), 10.0);
        assert_eq!(p.at(0, 1), 13.0);
        assert_eq!(p.at(1, 0), 28.0);
        assert_eq!(p.at(1, 1), 40.0);
    }

    /// Naive reference implementations the blocked kernels must match
    /// exactly (same accumulation order ⇒ bitwise-equal results).
    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows, b.cols);
        for r in 0..a.rows {
            for k in 0..a.cols {
                let v = a.at(r, k);
                if v == 0.0 {
                    continue;
                }
                for c in 0..b.cols {
                    out.data[r * b.cols + c] += v * b.at(k, c);
                }
            }
        }
        out
    }

    #[test]
    fn blocked_matmul_matches_naive_bitwise() {
        // Dimensions straddling tile boundaries: below, at, above and
        // far past TILE, none a multiple of another.
        for (m, k, n) in [(1, 1, 1), (7, 5, 3), (32, 32, 32), (33, 70, 41), (100, 37, 65)] {
            let a = Matrix::from_fn(m, k, |r, c| {
                // Mix signs, magnitudes and exact zeros (skip path).
                if (r + c) % 7 == 0 {
                    0.0
                } else {
                    ((r * 31 + c * 17) % 101) as f64 * 0.37 - 18.0
                }
            });
            let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 29) % 97) as f64 * 0.59 - 28.0);
            let blocked = a.matmul(&b);
            let naive = naive_matmul(&a, &b);
            assert_eq!(blocked, naive, "{m}x{k} × {k}x{n}");
        }
    }

    #[test]
    fn blocked_transpose_matches_reference() {
        for (m, n) in [(1, 1), (3, 80), (32, 32), (33, 41), (100, 7)] {
            let a = Matrix::from_fn(m, n, |r, c| (r * 131 + c * 7) as f64 * 0.25);
            let reference = Matrix::from_fn(n, m, |r, c| a.at(c, r));
            assert_eq!(a.transpose(), reference, "{m}x{n}");
        }
    }

    #[test]
    fn transpose_involutive() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 7 + c * 3) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().at(4, 2), a.at(2, 4));
    }

    #[test]
    fn slices_partition_the_matrix() {
        let a = Matrix::from_fn(4, 6, |r, c| (r * 6 + c) as f64);
        let top = a.row_slice(0..1);
        let bottom = a.row_slice(1..4);
        assert_eq!(Matrix::vstack(&top, &bottom), a);
        let left = a.col_slice(0..2);
        let right = a.col_slice(2..6);
        assert_eq!(Matrix::hstack(&left, &right), a);
    }

    #[test]
    fn add_and_hadamard() {
        let a = Matrix::from_fn(2, 2, |r, c| (r + c) as f64);
        let sum = a.add(&a);
        assert_eq!(sum.at(1, 1), 4.0);
        let had = a.hadamard(&a);
        assert_eq!(had.at(1, 1), 4.0);
        assert_eq!(had.at(0, 0), 0.0);
    }

    #[test]
    fn approx_eq_tolerates_noise() {
        let a = Matrix::from_fn(2, 2, |_, _| 1.0);
        let b = a.map(|v| v + 1e-12);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&b, 1e-15));
        assert!(!a.approx_eq(&Matrix::zeros(2, 3), 1.0));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "bad row range")]
    fn empty_slice_rejected() {
        let a = Matrix::zeros(2, 2);
        let _ = a.row_slice(1..1);
    }
}
