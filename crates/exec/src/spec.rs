use crate::matrix::Matrix;
use accpar_partition::PartitionType;

/// The activation used between layers. Both runs apply it identically,
/// so equality checks remain exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// `f(x) = x`, `f'(x) = 1` — keeps the algebra fully linear.
    #[default]
    Identity,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Applies `f` element-wise.
    #[must_use]
    pub fn apply(self, m: &Matrix) -> Matrix {
        match self {
            Activation::Identity => m.clone(),
            Activation::Relu => m.map(|v| v.max(0.0)),
        }
    }

    /// Applies `f'` element-wise (to the pre-activation values).
    #[must_use]
    pub fn derivative(self, m: &Matrix) -> Matrix {
        match self {
            Activation::Identity => m.map(|_| 1.0),
            Activation::Relu => m.map(|v| if v > 0.0 { 1.0 } else { 0.0 }),
        }
    }
}

/// One fully-connected layer of the oracle network, with its partition
/// decision: the type and the *integer* share of the partitioned
/// dimension assigned to device 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerSpec {
    /// Input features `D_{i,l}`.
    pub d_in: usize,
    /// Output features `D_{o,l}`.
    pub d_out: usize,
    /// The basic partition type.
    pub ptype: PartitionType,
    /// Device 0's integer share of the partitioned dimension
    /// (`B`, `D_{i,l}` or `D_{o,l}` according to `ptype`). Must be
    /// strictly between 0 and the dimension length so both devices hold
    /// a non-empty slice.
    pub split: usize,
}

impl LayerSpec {
    /// Creates a layer spec.
    #[must_use]
    pub const fn new(d_in: usize, d_out: usize, ptype: PartitionType, split: usize) -> Self {
        Self {
            d_in,
            d_out,
            ptype,
            split,
        }
    }

    /// The length of the partitioned dimension given the batch size.
    #[must_use]
    pub const fn dim_len(&self, batch: usize) -> usize {
        match self.ptype {
            PartitionType::TypeI => batch,
            PartitionType::TypeII => self.d_in,
            PartitionType::TypeIII => self.d_out,
        }
    }
}

/// A full training-step specification: batch size, layers with partition
/// decisions, and the activation.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSpec {
    /// Mini-batch size `B`.
    pub batch: usize,
    /// The layer chain.
    pub layers: Vec<LayerSpec>,
    /// Non-linearity between layers.
    pub activation: Activation,
}

impl StepSpec {
    /// Creates a spec with the identity activation.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain, mismatched dims, or a degenerate split.
    #[must_use]
    pub fn new(batch: usize, layers: Vec<LayerSpec>) -> Self {
        Self::with_activation(batch, layers, Activation::Identity)
    }

    /// Creates a spec with the given activation.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain, mismatched dims, or a degenerate split
    /// (a split of 0 or the full dimension would leave one device with
    /// an empty tensor, which dense matrices cannot represent).
    #[must_use]
    pub fn with_activation(batch: usize, layers: Vec<LayerSpec>, activation: Activation) -> Self {
        assert!(!layers.is_empty(), "the chain needs at least one layer");
        assert!(batch > 0, "batch must be positive");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].d_out, pair[1].d_in,
                "consecutive layers must agree on the boundary width"
            );
        }
        for (i, layer) in layers.iter().enumerate() {
            let dim = layer.dim_len(batch);
            assert!(
                layer.split > 0 && layer.split < dim,
                "layer {i}: split {} must be strictly inside 1..{dim}",
                layer.split
            );
        }
        Self {
            batch,
            layers,
            activation,
        }
    }

    /// Deterministic input feature map `F_0`.
    #[must_use]
    pub fn input(&self) -> Matrix {
        // Small, varied, sign-mixed values.
        Matrix::from_fn(self.batch, self.layers[0].d_in, |r, c| {
            ((r * 31 + c * 17 + 7) % 23) as f64 / 11.0 - 1.0
        })
    }

    /// Deterministic weight matrix for layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range.
    #[must_use]
    pub fn weight(&self, l: usize) -> Matrix {
        let spec = self.layers[l];
        Matrix::from_fn(spec.d_in, spec.d_out, |r, c| {
            ((r * 13 + c * 29 + l * 41 + 3) % 19) as f64 / 9.5 - 1.0
        })
    }

    /// Deterministic loss gradient at the network output (`E_N`).
    #[must_use]
    pub fn output_error(&self) -> Matrix {
        let d_out = self.layers.last().expect("non-empty").d_out;
        Matrix::from_fn(self.batch, d_out, |r, c| {
            ((r * 7 + c * 5 + 1) % 13) as f64 / 6.5 - 1.0
        })
    }
}

/// The tensors a training step produces: per-layer activations, errors
/// and weight gradients.
#[derive(Debug, Clone, PartialEq)]
pub struct StepTensors {
    /// `F_l` for `l = 0..=N` (post-activation; `F_0` is the input, `F_N`
    /// the network output).
    pub fmaps: Vec<Matrix>,
    /// `E_l` for `l = 0..N` (the error at each layer's *input* boundary).
    pub errors: Vec<Matrix>,
    /// `ΔW_l` for `l = 0..N`.
    pub grads: Vec<Matrix>,
}

impl StepTensors {
    /// Approximate equality of all tensors.
    #[must_use]
    pub fn approx_eq(&self, other: &StepTensors, tol: f64) -> bool {
        self.fmaps.len() == other.fmaps.len()
            && self.errors.len() == other.errors.len()
            && self.grads.len() == other.grads.len()
            && self
                .fmaps
                .iter()
                .zip(&other.fmaps)
                .all(|(a, b)| a.approx_eq(b, tol))
            && self
                .errors
                .iter()
                .zip(&other.errors)
                .all(|(a, b)| a.approx_eq(b, tol))
            && self
                .grads
                .iter()
                .zip(&other.grads)
                .all(|(a, b)| a.approx_eq(b, tol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation() {
        let spec = StepSpec::new(
            4,
            vec![LayerSpec::new(6, 5, PartitionType::TypeI, 2)],
        );
        assert_eq!(spec.input().rows(), 4);
        assert_eq!(spec.input().cols(), 6);
        assert_eq!(spec.weight(0).rows(), 6);
        assert_eq!(spec.output_error().cols(), 5);
    }

    #[test]
    #[should_panic(expected = "boundary width")]
    fn mismatched_dims_rejected() {
        let _ = StepSpec::new(
            4,
            vec![
                LayerSpec::new(6, 5, PartitionType::TypeI, 2),
                LayerSpec::new(4, 3, PartitionType::TypeI, 2),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "strictly inside")]
    fn degenerate_split_rejected() {
        let _ = StepSpec::new(4, vec![LayerSpec::new(6, 5, PartitionType::TypeI, 4)]);
    }

    #[test]
    fn deterministic_data_is_sign_mixed() {
        let spec = StepSpec::new(8, vec![LayerSpec::new(10, 10, PartitionType::TypeII, 5)]);
        let input = spec.input();
        let mut pos = 0;
        let mut neg = 0;
        for r in 0..input.rows() {
            for c in 0..input.cols() {
                if input.at(r, c) > 0.0 {
                    pos += 1;
                } else if input.at(r, c) < 0.0 {
                    neg += 1;
                }
            }
        }
        assert!(pos > 0 && neg > 0);
    }

    #[test]
    fn activations() {
        let m = Matrix::from_fn(1, 3, |_, c| c as f64 - 1.0); // [-1, 0, 1]
        let relu = Activation::Relu.apply(&m);
        assert_eq!(relu.at(0, 0), 0.0);
        assert_eq!(relu.at(0, 2), 1.0);
        let d = Activation::Relu.derivative(&m);
        assert_eq!(d.at(0, 0), 0.0);
        assert_eq!(d.at(0, 2), 1.0);
        assert_eq!(Activation::Identity.apply(&m), m);
        assert_eq!(Activation::Identity.derivative(&m).at(0, 0), 1.0);
    }
}
