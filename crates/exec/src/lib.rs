//! Executable reference semantics for AccPar's partition types.
//!
//! §3 of the paper argues — with diagrams — that each of the three basic
//! partition types produces *correct* training computations provided the
//! right tensors are replicated, the right partial sums are combined, and
//! the right conversions happen between differently partitioned layers.
//! This crate turns that argument into checked code: it **numerically
//! executes** one training step of a fully-connected network
//!
//! * on a single reference device (the [`mod@reference`] module), and
//! * on two virtual devices under an arbitrary per-layer
//!   `(PartitionType, split)` plan ([`partitioned`]), with every remote
//!   byte counted by a [`CommMeter`],
//!
//! and asserts (in its test suite) that
//!
//! 1. the partitioned run reproduces the reference `F`, `E` and `ΔW`
//!    tensors exactly, for every type combination, ratio and depth; and
//! 2. the *measured* communication matches the analytic formulas of
//!    Tables 4 and 5 (`accpar-cost`) element for element.
//!
//! The crate is deliberately tiny and slow (dense `f64` matrices): it is
//! a semantics oracle, not a performance path.
//!
//! # Example
//!
//! ```
//! use accpar_exec::{partitioned, reference, LayerSpec, StepSpec};
//! use accpar_partition::PartitionType;
//!
//! let spec = StepSpec::new(4, vec![
//!     LayerSpec::new(6, 5, PartitionType::TypeI, 2),
//!     LayerSpec::new(5, 3, PartitionType::TypeIII, 1),
//! ]);
//! let want = reference::run(&spec);
//! let (got, meter) = partitioned::run(&spec);
//! assert!(want.approx_eq(&got, 1e-9));
//! assert!(meter.total_elems() > 0);
//! # let _ = meter;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hierarchy;
pub mod matrix;
mod meter;
pub mod partitioned;
mod piece;
pub mod reference;
mod spec;

pub use matrix::Matrix;
pub use meter::CommMeter;
pub use piece::{Cover, Piece};
pub use spec::{Activation, LayerSpec, StepSpec, StepTensors};
