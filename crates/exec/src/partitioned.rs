//! The two-device partitioned execution: the paper's Figure 1 semantics
//! run for real.
//!
//! Device 0 always takes the *leading* slice of each layer's partitioned
//! dimension (the convention shared with `accpar-cost`); device 1 takes
//! the trailing slice. Every element fetched across the device boundary
//! is counted in a [`CommMeter`] under the same buckets the analytic
//! model uses, so tests can compare measured against predicted traffic
//! exactly.

use crate::matrix::Matrix;
use crate::meter::CommMeter;
use crate::piece::{Cover, Piece};
use crate::spec::{StepSpec, StepTensors};
use accpar_partition::PartitionType;

/// Per-device view of one layer's weight shard.
fn weight_shard(spec: &StepSpec, l: usize, device: usize) -> Matrix {
    let layer = spec.layers[l];
    let w = spec.weight(l);
    let s = layer.split;
    match layer.ptype {
        PartitionType::TypeI => w, // replicated
        PartitionType::TypeII => {
            if device == 0 {
                w.row_slice(0..s)
            } else {
                w.row_slice(s..layer.d_in)
            }
        }
        PartitionType::TypeIII => {
            if device == 0 {
                w.col_slice(0..s)
            } else {
                w.col_slice(s..layer.d_out)
            }
        }
    }
}

/// The range of the partitioned dimension owned by `device`.
fn owned(split: usize, len: usize, device: usize) -> std::ops::Range<usize> {
    if device == 0 {
        0..split
    } else {
        split..len
    }
}

/// What a layer *needs* its input `F_l` to cover (`needs_f` of the cost
/// model, §4.1.2).
fn needs_f(spec: &StepSpec, l: usize, device: usize) -> Cover {
    let layer = spec.layers[l];
    match layer.ptype {
        PartitionType::TypeI => Cover::Rows(owned(layer.split, spec.batch, device)),
        PartitionType::TypeII => Cover::Cols(owned(layer.split, layer.d_in, device)),
        PartitionType::TypeIII => Cover::Full,
    }
}

/// What a layer *needs* its incoming error `E_{l+1}` to cover
/// (`needs_e`).
fn needs_e(spec: &StepSpec, l: usize, device: usize) -> Cover {
    let layer = spec.layers[l];
    match layer.ptype {
        PartitionType::TypeI => Cover::Rows(owned(layer.split, spec.batch, device)),
        PartitionType::TypeII => Cover::Full,
        PartitionType::TypeIII => Cover::Cols(owned(layer.split, layer.d_out, device)),
    }
}

/// Exchanges partial results: each device fetches the sibling's full
/// partial tensor and adds it (the Table 4 exchange). Returns the two
/// complete tensors and counts `A(T)` fetched elements per device.
fn psum_exchange(partials: [Matrix; 2]) -> ([Matrix; 2], u64) {
    let elems = partials[0].len() as u64;
    let sum = partials[0].add(&partials[1]);
    ([sum.clone(), sum], elems)
}

/// Runs one training step on two virtual devices under `spec`'s plan.
///
/// Returns the reconstructed full tensors (for comparison against
/// [`reference::run`](crate::reference::run)) and the communication
/// meter.
///
/// # Panics
///
/// Panics only on internal invariant violations (a piece failing to cover
/// a need it must cover by construction).
#[must_use]
pub fn run(spec: &StepSpec) -> (StepTensors, CommMeter) {
    let n = spec.layers.len();
    let act = spec.activation;
    let mut meter = CommMeter::new(n);

    // --- Forward sweep -------------------------------------------------
    // The input starts pre-distributed in layer 0's needed layout.
    let input = spec.input();
    let mut boundary: [Piece; 2] = [0, 1].map(|d| {
        let (piece, _) = Piece::full(input.clone()).materialize(
            &needs_f(spec, 0, d),
            &Piece::full(input.clone()),
        );
        piece
    });

    // Retained per (layer, device): the input piece each device used.
    let mut f_used: Vec<[Piece; 2]> = Vec::with_capacity(n);
    // The output boundary pieces per layer (post-activation F_{l+1}).
    let mut f_out_pieces: Vec<[Piece; 2]> = Vec::with_capacity(n);

    for l in 0..n {
        let layer = spec.layers[l];
        // Convert the boundary into this layer's needed layout.
        if l > 0 {
            let mut converted = Vec::with_capacity(2);
            for d in 0..2 {
                let (piece, fetched) =
                    boundary[d].materialize(&needs_f(spec, l, d), &boundary[1 - d]);
                meter.inter_f[l][d] += fetched;
                converted.push(piece);
            }
            boundary = [converted.remove(0), converted.remove(0)];
        }
        f_used.push(boundary.clone());

        // Compute F_{l+1} per type.
        let out_shape = (spec.batch, layer.d_out);
        let produce = |d: usize| -> Matrix { boundary[d].data().matmul(&weight_shard(spec, l, d)) };
        let next: [Piece; 2] = match layer.ptype {
            PartitionType::TypeI => [0, 1].map(|d| {
                Piece::rows(
                    out_shape.0,
                    owned(layer.split, spec.batch, d),
                    act.apply(&produce(d)),
                )
            }),
            PartitionType::TypeII => {
                let (full, elems) = psum_exchange([produce(0), produce(1)]);
                meter.intra[l][0] += elems;
                meter.intra[l][1] += elems;
                full.map(|m| Piece::full(act.apply(&m)))
            }
            PartitionType::TypeIII => [0, 1].map(|d| {
                Piece::cols(
                    out_shape.1,
                    owned(layer.split, layer.d_out, d),
                    act.apply(&produce(d)),
                )
            }),
        };
        f_out_pieces.push(next.clone());
        boundary = next;
    }

    // --- Backward + gradient sweep --------------------------------------
    // The loss gradient arrives laid out like the last layer's output
    // (F and E share partitioning): no communication for it.
    let loss = spec.output_error();
    let mut e_boundary: [Piece; 2] = [0, 1].map(|d| {
        // `needs_e(t)` equals `holds_f(t)` for every type, so the loss
        // arrives exactly where the forward output lives.
        let need = match spec.layers[n - 1].ptype {
            PartitionType::TypeII => Cover::Full,
            _ => needs_e(spec, n - 1, d),
        };
        let (piece, _) =
            Piece::full(loss.clone()).materialize(&need, &Piece::full(loss.clone()));
        piece
    });

    let mut grads: Vec<Matrix> = vec![Matrix::zeros(1, 1); n];
    let mut errors: Vec<Matrix> = vec![Matrix::zeros(1, 1); n];

    for l in (0..n).rev() {
        let layer = spec.layers[l];
        // Materialize E_{l+1} in this layer's needed layout. (For the
        // last layer this is free by construction; for inner boundaries
        // it is the Table 5 "E" conversion.)
        let mut e_used: Vec<Piece> = Vec::with_capacity(2);
        for d in 0..2 {
            let (piece, fetched) =
                e_boundary[d].materialize(&needs_e(spec, l, d), &e_boundary[1 - d]);
            meter.inter_e[l][d] += fetched;
            e_used.push(piece);
        }

        // Gradient: ΔW_l = F_lᵀ × E_{l+1}.
        match layer.ptype {
            PartitionType::TypeI => {
                let partial =
                    |d: usize| f_used[l][d].data().transpose().matmul(e_used[d].data());
                let (full, elems) = psum_exchange([partial(0), partial(1)]);
                meter.intra[l][0] += elems;
                meter.intra[l][1] += elems;
                grads[l] = full[0].clone();
            }
            PartitionType::TypeII => {
                // Each device computes its row slice of ΔW locally.
                let slice =
                    |d: usize| f_used[l][d].data().transpose().matmul(e_used[d].data());
                let p0 = Piece::rows(layer.d_in, owned(layer.split, layer.d_in, 0), slice(0));
                let p1 = Piece::rows(layer.d_in, owned(layer.split, layer.d_in, 1), slice(1));
                grads[l] = Piece::reassemble(&p0, &p1);
            }
            PartitionType::TypeIII => {
                let slice =
                    |d: usize| f_used[l][d].data().transpose().matmul(e_used[d].data());
                let p0 = Piece::cols(layer.d_out, owned(layer.split, layer.d_out, 0), slice(0));
                let p1 = Piece::cols(layer.d_out, owned(layer.split, layer.d_out, 1), slice(1));
                grads[l] = Piece::reassemble(&p0, &p1);
            }
        }

        // Backward: E_l = (E_{l+1} × W_lᵀ) ⊙ f'(F_l).
        let e_in: [Piece; 2] = match layer.ptype {
            PartitionType::TypeI => [0, 1].map(|d| {
                let raw = e_used[d].data().matmul(&weight_shard(spec, l, d).transpose());
                let fprime = act.derivative(f_used[l][d].data());
                Piece::rows(
                    spec.batch,
                    owned(layer.split, spec.batch, d),
                    raw.hadamard(&fprime),
                )
            }),
            PartitionType::TypeII => [0, 1].map(|d| {
                // E_{l+1} is replicated; W rows slice → E_l column slice.
                let raw = e_used[d].data().matmul(&weight_shard(spec, l, d).transpose());
                let fprime = act.derivative(f_used[l][d].data());
                Piece::cols(
                    layer.d_in,
                    owned(layer.split, layer.d_in, d),
                    raw.hadamard(&fprime),
                )
            }),
            PartitionType::TypeIII => {
                let partial =
                    |d: usize| e_used[d].data().matmul(&weight_shard(spec, l, d).transpose());
                let (full, elems) = psum_exchange([partial(0), partial(1)]);
                meter.intra[l][0] += elems;
                meter.intra[l][1] += elems;
                full.map(|m| {
                    let fprime = act.derivative(f_used[l][0].data());
                    Piece::full(m.hadamard(&fprime))
                })
            }
        };
        errors[l] = Piece::reassemble(&e_in[0], &e_in[1]);
        e_boundary = e_in;
    }

    // --- Reconstruction --------------------------------------------------
    let mut fmaps = Vec::with_capacity(n + 1);
    fmaps.push(input);
    for pieces in &f_out_pieces {
        fmaps.push(Piece::reassemble(&pieces[0], &pieces[1]));
    }

    (
        StepTensors {
            fmaps,
            errors,
            grads,
        },
        meter,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::spec::{Activation, LayerSpec};
    use PartitionType::{TypeI, TypeII, TypeIII};

    fn check(spec: &StepSpec) -> CommMeter {
        let want = reference::run(spec);
        let (got, meter) = run(spec);
        assert!(
            want.approx_eq(&got, 1e-9),
            "partitioned run diverged for {spec:?}"
        );
        meter
    }

    #[test]
    fn single_layer_each_type_matches_reference() {
        for t in [TypeI, TypeII, TypeIII] {
            for split in [1, 2, 3] {
                let spec = StepSpec::new(4, vec![LayerSpec::new(6, 5, t, split)]);
                let meter = check(&spec);
                // Exactly one psum exchange per device (Table 4).
                let expected = match t {
                    TypeI => 6 * 5,  // A(W)
                    TypeII => 4 * 5, // A(F_{l+1})
                    TypeIII => 4 * 6, // A(E_l)
                } as u64;
                assert_eq!(meter.intra[0], [expected, expected], "{t}");
                // A single layer has no inter-layer conversions.
                assert_eq!(meter.inter_elems(), 0, "{t}");
            }
        }
    }

    #[test]
    fn all_81_two_layer_type_and_split_combinations_match() {
        for t0 in [TypeI, TypeII, TypeIII] {
            for t1 in [TypeI, TypeII, TypeIII] {
                for s0 in [1, 3] {
                    for s1 in [2, 3] {
                        let spec = StepSpec::new(
                            5,
                            vec![
                                LayerSpec::new(6, 4, t0, s0),
                                LayerSpec::new(4, 7, t1, s1),
                            ],
                        );
                        check(&spec);
                    }
                }
            }
        }
    }

    #[test]
    fn relu_activation_also_matches() {
        for t0 in [TypeI, TypeII, TypeIII] {
            for t1 in [TypeI, TypeII, TypeIII] {
                let spec = StepSpec::with_activation(
                    4,
                    vec![
                        LayerSpec::new(5, 6, t0, 2),
                        LayerSpec::new(6, 3, t1, 1),
                    ],
                    Activation::Relu,
                );
                check(&spec);
            }
        }
    }

    #[test]
    fn free_transitions_move_no_conversion_data() {
        // Table 5's zero entries: I→I (same split), II→III, III→II.
        for (t0, t1) in [(TypeI, TypeI), (TypeII, TypeIII), (TypeIII, TypeII)] {
            let spec = StepSpec::new(
                6,
                vec![LayerSpec::new(4, 5, t0, 3), LayerSpec::new(5, 4, t1, 3)],
            );
            let meter = check(&spec);
            assert_eq!(meter.inter_elems(), 0, "{t0} -> {t1}");
        }
    }

    #[test]
    fn deep_mixed_chain_matches() {
        let spec = StepSpec::new(
            6,
            vec![
                LayerSpec::new(8, 6, TypeI, 2),
                LayerSpec::new(6, 9, TypeII, 4),
                LayerSpec::new(9, 5, TypeIII, 2),
                LayerSpec::new(5, 7, TypeI, 5),
                LayerSpec::new(7, 4, TypeII, 3),
            ],
        );
        let meter = check(&spec);
        assert!(meter.total_elems() > 0);
    }
}
