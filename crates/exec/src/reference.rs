//! The single-device reference: one training step computed directly from
//! §2.1's three equations, with no partitioning.

use crate::matrix::Matrix;
use crate::spec::{StepSpec, StepTensors};

/// Runs one training step on a single device.
///
/// Forward: `F_{l+1} = f(F_l × W_l)`;
/// backward: `E_l = (E_{l+1} × W_lᵀ) ⊙ f'(F_l × W_{l-1}…)` — as in the
/// paper, the derivative is taken at the layer's input pre-activation;
/// gradient: `ΔW_l = F_lᵀ × E_{l+1}`.
///
/// For the backward phase we follow the paper's §3.1 statement literally:
/// `E_l = (E_{l+1} × W_lᵀ) ⊙ f'(F_l)`, evaluating `f'` at the stored
/// (post-activation) `F_l`, which is exact for the identity activation
/// and the standard convention for ReLU (where `f'(f(x)) = f'(x)`).
#[must_use]
pub fn run(spec: &StepSpec) -> StepTensors {
    let n = spec.layers.len();
    let act = spec.activation;

    // Forward sweep.
    let mut fmaps: Vec<Matrix> = Vec::with_capacity(n + 1);
    fmaps.push(spec.input());
    for l in 0..n {
        let pre = fmaps[l].matmul(&spec.weight(l));
        fmaps.push(act.apply(&pre));
    }

    // Backward + gradient sweep. `errors[l]` is E at layer l's input
    // boundary; the incoming error at the output is the loss gradient.
    let mut errors: Vec<Matrix> = vec![Matrix::zeros(1, 1); n];
    let mut grads: Vec<Matrix> = vec![Matrix::zeros(1, 1); n];
    let mut e_out = spec.output_error();
    for l in (0..n).rev() {
        let w = spec.weight(l);
        grads[l] = fmaps[l].transpose().matmul(&e_out);
        let e_in = e_out
            .matmul(&w.transpose())
            .hadamard(&act.derivative(&fmaps[l]));
        errors[l] = e_in.clone();
        e_out = e_in;
    }

    StepTensors {
        fmaps,
        errors,
        grads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Activation, LayerSpec};
    use accpar_partition::PartitionType;

    fn tiny() -> StepSpec {
        StepSpec::new(
            3,
            vec![
                LayerSpec::new(4, 5, PartitionType::TypeI, 1),
                LayerSpec::new(5, 2, PartitionType::TypeI, 1),
            ],
        )
    }

    #[test]
    fn shapes_are_right() {
        let spec = tiny();
        let t = run(&spec);
        assert_eq!(t.fmaps.len(), 3);
        assert_eq!(t.errors.len(), 2);
        assert_eq!(t.grads.len(), 2);
        assert_eq!((t.fmaps[0].rows(), t.fmaps[0].cols()), (3, 4));
        assert_eq!((t.fmaps[2].rows(), t.fmaps[2].cols()), (3, 2));
        assert_eq!((t.errors[0].rows(), t.errors[0].cols()), (3, 4));
        assert_eq!((t.grads[1].rows(), t.grads[1].cols()), (5, 2));
    }

    #[test]
    fn identity_gradient_matches_hand_computation() {
        // Single layer, identity activation: ΔW = F₀ᵀ × E.
        let spec = StepSpec::new(2, vec![LayerSpec::new(3, 2, PartitionType::TypeI, 1)]);
        let t = run(&spec);
        let expected = spec.input().transpose().matmul(&spec.output_error());
        assert!(t.grads[0].approx_eq(&expected, 1e-12));
        // And E₀ = E × Wᵀ.
        let e0 = spec.output_error().matmul(&spec.weight(0).transpose());
        assert!(t.errors[0].approx_eq(&e0, 1e-12));
    }

    #[test]
    fn relu_zeroes_negative_paths() {
        let spec = StepSpec::with_activation(
            3,
            vec![
                LayerSpec::new(4, 5, PartitionType::TypeI, 1),
                LayerSpec::new(5, 2, PartitionType::TypeI, 1),
            ],
            Activation::Relu,
        );
        let t = run(&spec);
        // Post-activation maps are non-negative.
        for fmap in &t.fmaps[1..] {
            for r in 0..fmap.rows() {
                for c in 0..fmap.cols() {
                    assert!(fmap.at(r, c) >= 0.0);
                }
            }
        }
        // Errors at dead units are zero.
        let f1 = &t.fmaps[1];
        for r in 0..f1.rows() {
            for c in 0..f1.cols() {
                if f1.at(r, c) == 0.0 {
                    assert_eq!(t.errors[1].at(r, c), 0.0);
                }
            }
        }
    }
}
