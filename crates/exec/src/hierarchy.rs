//! The hierarchical oracle: §5.1's *recursive* partitioning executed
//! numerically on `2^h` virtual devices.
//!
//! The planner and the simulator both rely on the `ShardScales` algebra:
//! at hierarchy level `k`, a tensor's shard is the full tensor shrunk by
//! the product of the ancestors' shares along the dimensions their types
//! partition — and the partial-sum exchange at a level-`k` node moves
//! exactly the *shard-scaled* psum tensor. This module executes a
//! uniform multi-level plan for real — every leaf holds an actual
//! sub-matrix (a rectangle: the intersection of its ancestors' row/column
//! slices), partial sums combine bottom-up through mirror-leaf exchanges —
//! and the tests assert that
//!
//! 1. the results equal the single-device reference, and
//! 2. every level's measured exchange volume equals the
//!    `ShardScales::psum_scale` prediction.

use crate::matrix::Matrix;
use crate::spec::{Activation, LayerSpec, StepSpec, StepTensors};
use accpar_partition::{PartitionType, ShardScales};
use std::collections::HashMap;

/// A rectangle of a logically shared matrix, in global coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rect {
    /// Row range start.
    pub r0: usize,
    /// Row range end (exclusive).
    pub r1: usize,
    /// Column range start.
    pub c0: usize,
    /// Column range end (exclusive).
    pub c1: usize,
}

impl Rect {
    fn full(rows: usize, cols: usize) -> Self {
        Self {
            r0: 0,
            r1: rows,
            c0: 0,
            c1: cols,
        }
    }

    fn rows(&self) -> usize {
        self.r1 - self.r0
    }

    fn cols(&self) -> usize {
        self.c1 - self.c0
    }

    /// Elements covered.
    #[must_use]
    pub fn len(&self) -> u64 {
        (self.rows() * self.cols()) as u64
    }

    /// Never empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.r0 >= self.r1 || self.c0 >= self.c1
    }

    fn contains(&self, r: usize, c: usize) -> bool {
        self.r0 <= r && r < self.r1 && self.c0 <= c && c < self.c1
    }
}

/// A leaf's rectangle of a shared tensor plus its data.
#[derive(Debug, Clone)]
struct RectPiece {
    rect: Rect,
    data: Matrix,
}

impl RectPiece {
    fn slice_of(m: &Matrix, rect: Rect) -> Self {
        let data = Matrix::from_fn(rect.rows(), rect.cols(), |r, c| {
            m.at(rect.r0 + r, rect.c0 + c)
        });
        Self { rect, data }
    }

    fn at_global(&self, r: usize, c: usize) -> f64 {
        self.data.at(r - self.rect.r0, c - self.rect.c0)
    }
}

/// The per-level decision for one layer: the basic type and the fraction
/// of the *node's own* partitioned range assigned to its first child.
pub type LevelPlan = (PartitionType, f64);

/// A uniform hierarchical plan: `plans[level][layer]`.
#[derive(Debug, Clone, PartialEq)]
pub struct HierStepSpec {
    /// The underlying chain (its per-layer `ptype`/`split` are unused;
    /// dimensions, data and activation are shared with the flat oracle).
    pub base: StepSpec,
    /// Per level, per layer decisions.
    pub plans: Vec<Vec<LevelPlan>>,
}

impl HierStepSpec {
    /// Builds a hierarchical spec over the given layer dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any level's plan does not cover every layer, or any
    /// fraction is outside `(0, 1)`.
    #[must_use]
    pub fn new(
        batch: usize,
        dims: &[usize],
        plans: Vec<Vec<LevelPlan>>,
        activation: Activation,
    ) -> Self {
        let layers: Vec<LayerSpec> = dims
            .windows(2)
            .map(|pair| LayerSpec::new(pair[0], pair[1], PartitionType::TypeI, 1))
            .collect();
        let base = StepSpec::with_activation(batch, layers, activation);
        for level in &plans {
            assert_eq!(level.len(), base.layers.len(), "one plan entry per layer");
            for &(_, frac) in level {
                assert!(frac > 0.0 && frac < 1.0, "fractions must be interior");
            }
        }
        Self { base, plans }
    }

    fn levels(&self) -> usize {
        self.plans.len()
    }

    fn n_leaves(&self) -> usize {
        1 << self.levels()
    }
}

/// Splits `range` at `round(frac·len)` clamped to keep both sides
/// non-empty, returning the requested side.
fn split_range(range: (usize, usize), frac: f64, second: bool) -> (usize, usize) {
    let len = range.1 - range.0;
    let s = ((frac * len as f64).round() as usize).clamp(1, len.saturating_sub(1).max(1));
    if second {
        (range.0 + s, range.1)
    } else {
        (range.0, range.0 + s)
    }
}

/// Which tensor dims a level's type slices, for each of the tensors of
/// layer `l`. Folding these over a leaf's path yields its rectangles.
#[derive(Debug, Clone, Copy)]
struct LayerRects {
    f_in: Rect,
    w: Rect,
    e_in: Rect,
}

fn leaf_rects(spec: &HierStepSpec, l: usize, path: &[bool]) -> LayerRects {
    let layer = spec.base.layers[l];
    let b = spec.base.batch;
    let mut batch_i = (0usize, b); // batch rows of F_in / E_out
    let mut batch_o = (0usize, b); // batch rows of F_out / E_in
    let mut d_in = (0usize, layer.d_in);
    let mut d_out = (0usize, layer.d_out);
    for (level, &bit) in path.iter().enumerate() {
        let (t, frac) = spec.plans[level][l];
        match t {
            PartitionType::TypeI => {
                batch_i = split_range(batch_i, frac, bit);
                batch_o = split_range(batch_o, frac, bit);
            }
            PartitionType::TypeII => {
                d_in = split_range(d_in, frac, bit);
            }
            PartitionType::TypeIII => {
                d_out = split_range(d_out, frac, bit);
            }
        }
    }
    LayerRects {
        f_in: Rect {
            r0: batch_i.0,
            r1: batch_i.1,
            c0: d_in.0,
            c1: d_in.1,
        },
        w: Rect {
            r0: d_in.0,
            r1: d_in.1,
            c0: d_out.0,
            c1: d_out.1,
        },
        e_in: Rect {
            r0: batch_o.0,
            r1: batch_o.1,
            c0: d_out.0,
            c1: d_out.1,
        },
    }
}

/// The rectangle of `F_{l+1}` a leaf *produces*: Type-II stays full in
/// `d_out` (each leaf ends holding the complete psum result over its
/// enclosing rect), Type-III splits it — the mirror image of the `e_in`
/// need above.
fn produced_out_rect(spec: &HierStepSpec, l: usize, path: &[bool]) -> Rect {
    let layer = spec.base.layers[l];
    let b = spec.base.batch;
    let mut batch = (0usize, b);
    let mut d_out = (0usize, layer.d_out);
    for (level, &bit) in path.iter().enumerate() {
        let (t, frac) = spec.plans[level][l];
        match t {
            PartitionType::TypeI => batch = split_range(batch, frac, bit),
            PartitionType::TypeII => {} // full after the psum
            PartitionType::TypeIII => d_out = split_range(d_out, frac, bit),
        }
    }
    Rect {
        r0: batch.0,
        r1: batch.1,
        c0: d_out.0,
        c1: d_out.1,
    }
}

/// Fetches the rectangle `need` for one leaf, preferring its own piece.
fn materialize(need: Rect, own: &RectPiece, all: &[RectPiece]) -> Matrix {
    Matrix::from_fn(need.rows(), need.cols(), |r, c| {
        let (gr, gc) = (need.r0 + r, need.c0 + c);
        if own.rect.contains(gr, gc) {
            own.at_global(gr, gc)
        } else {
            all.iter()
                .find(|p| p.rect.contains(gr, gc))
                .expect("the leaves jointly cover every tensor cell")
                .at_global(gr, gc)
        }
    })
}

/// Measured per-leaf psum exchange volumes, keyed by `(level, layer)`.
pub type PsumLog = HashMap<(usize, usize), u64>;

/// Runs one training step of `spec` on `2^h` virtual devices and returns
/// the reconstructed tensors plus the per-(level, layer) psum volumes.
///
/// # Panics
///
/// Panics only on internal invariant violations.
#[must_use]
pub fn run(spec: &HierStepSpec) -> (StepTensors, PsumLog) {
    let n = spec.base.layers.len();
    let n_leaves = spec.n_leaves();
    let levels = spec.levels();
    let act = spec.base.activation;
    let paths: Vec<Vec<bool>> = (0..n_leaves)
        .map(|i| (0..levels).map(|b| (i >> (levels - 1 - b)) & 1 == 1).collect())
        .collect();
    let mut psum_log: PsumLog = HashMap::new();

    // Mirror-exchange at `level` for the psum phase on layer `l`: every
    // leaf adds the partial of its mirror across the level's cut. The
    // logged volume is the traffic crossing the *first* node's cut in one
    // direction: the union of the distinct partial rectangles held under
    // its first child. (Leaves that deeper psum levels have already made
    // replicas of one another share a rectangle and contribute it once —
    // a real runtime would send it once.)
    let exchange = |partials: &mut Vec<Matrix>,
                        rects: &[Rect],
                        level: usize,
                        l: usize,
                        log: &mut PsumLog| {
        let old = partials.clone();
        for (i, p) in partials.iter_mut().enumerate() {
            let mirror = i ^ (1 << (levels - 1 - level));
            assert_eq!(
                (p.rows(), p.cols()),
                (old[mirror].rows(), old[mirror].cols()),
                "mirror partials must align"
            );
            *p = p.add(&old[mirror]);
        }
        // First node at this level, first child: ancestor bits and the
        // level bit are all zero.
        let first_child = 1usize << (levels - 1 - level);
        let mut distinct: Vec<Rect> = Vec::new();
        for (i, rect) in rects.iter().enumerate() {
            if i < first_child && !distinct.contains(rect) {
                distinct.push(*rect);
            }
        }
        log.insert((level, l), distinct.iter().map(Rect::len).sum());
    };

    // --- Forward sweep ---------------------------------------------------
    let input = spec.base.input();
    let mut boundary: Vec<RectPiece> = paths
        .iter()
        .map(|p| RectPiece::slice_of(&input, leaf_rects(spec, 0, p).f_in))
        .collect();
    let mut f_used: Vec<Vec<RectPiece>> = Vec::with_capacity(n);
    let mut f_out_hist: Vec<Vec<RectPiece>> = Vec::with_capacity(n);

    for l in 0..n {
        let w_full = spec.base.weight(l);
        // Materialize each leaf's needed input rect.
        let needs: Vec<RectPiece> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let need = leaf_rects(spec, l, p).f_in;
                RectPiece {
                    rect: need,
                    data: materialize(need, &boundary[i], &boundary),
                }
            })
            .collect();
        f_used.push(needs.clone());

        // Local partial products.
        let mut partials: Vec<Matrix> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let w = RectPiece::slice_of(&w_full, leaf_rects(spec, l, p).w);
                needs[i].data.matmul(&w.data)
            })
            .collect();
        let partial_rects: Vec<Rect> = paths
            .iter()
            .map(|p| {
                let r = leaf_rects(spec, l, p);
                Rect {
                    r0: r.f_in.r0,
                    r1: r.f_in.r1,
                    c0: r.w.c0,
                    c1: r.w.c1,
                }
            })
            .collect();
        // Type-II psums, deepest level first.
        for level in (0..levels).rev() {
            if spec.plans[level][l].0 == PartitionType::TypeII {
                exchange(&mut partials, &partial_rects, level, l, &mut psum_log);
            }
        }
        // Activation + new boundary pieces.
        let next: Vec<RectPiece> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| RectPiece {
                rect: produced_out_rect(spec, l, p),
                data: act.apply(&partials[i]),
            })
            .collect();
        f_out_hist.push(next.clone());
        boundary = next;
    }

    // --- Backward + gradient sweep ---------------------------------------
    let loss = spec.base.output_error();
    let last_shape = Rect::full(spec.base.batch, spec.base.layers[n - 1].d_out);
    let mut e_boundary: Vec<RectPiece> = (0..n_leaves)
        .map(|_| RectPiece::slice_of(&loss, last_shape))
        .collect();

    let mut grads: Vec<Matrix> = vec![Matrix::zeros(1, 1); n];
    let mut errors: Vec<Matrix> = vec![Matrix::zeros(1, 1); n];

    for l in (0..n).rev() {
        let w_full = spec.base.weight(l);
        // Materialize the incoming error in each leaf's needed layout.
        let e_used: Vec<RectPiece> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let need = leaf_rects(spec, l, p).e_in;
                RectPiece {
                    rect: need,
                    data: materialize(need, &e_boundary[i], &e_boundary),
                }
            })
            .collect();

        // Gradient: F_usedᵀ × E_used, psum over Type-I levels.
        let mut grad_partials: Vec<Matrix> = (0..n_leaves)
            .map(|i| f_used[l][i].data.transpose().matmul(&e_used[i].data))
            .collect();
        let grad_rects: Vec<Rect> = paths.iter().map(|p| leaf_rects(spec, l, p).w).collect();
        for level in (0..levels).rev() {
            if spec.plans[level][l].0 == PartitionType::TypeI {
                exchange(&mut grad_partials, &grad_rects, level, l, &mut psum_log);
            }
        }
        // Reassemble ΔW from the (replicated) per-leaf rects.
        let layer = spec.base.layers[l];
        let mut g = Matrix::zeros(layer.d_in, layer.d_out);
        for (i, p) in paths.iter().enumerate() {
            let rect = leaf_rects(spec, l, p).w;
            g.paste(
                rect.r0,
                rect.c0,
                &grad_partials[i].clone(),
            );
        }
        grads[l] = g;

        // Backward: E_used × Wᵀ, psum over Type-III levels, ⊙ f'(F_in).
        let mut back_partials: Vec<Matrix> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let w = RectPiece::slice_of(&w_full, leaf_rects(spec, l, p).w);
                e_used[i].data.matmul(&w.data.transpose())
            })
            .collect();
        let back_rects: Vec<Rect> = paths
            .iter()
            .map(|p| {
                let r = leaf_rects(spec, l, p);
                Rect {
                    r0: r.e_in.r0,
                    r1: r.e_in.r1,
                    c0: r.w.r0,
                    c1: r.w.r1,
                }
            })
            .collect();
        for level in (0..levels).rev() {
            if spec.plans[level][l].0 == PartitionType::TypeIII {
                exchange(&mut back_partials, &back_rects, level, l, &mut psum_log);
            }
        }
        let e_in_pieces: Vec<RectPiece> = paths
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let rect = leaf_rects(spec, l, p).f_in;
                let fprime = act.derivative(&f_used[l][i].data);
                RectPiece {
                    rect,
                    data: back_partials[i].hadamard(&fprime),
                }
            })
            .collect();
        let mut e = Matrix::zeros(spec.base.batch, layer.d_in);
        for piece in &e_in_pieces {
            e.paste(piece.rect.r0, piece.rect.c0, &piece.data);
        }
        errors[l] = e;
        e_boundary = e_in_pieces;
    }

    // --- Reassembly --------------------------------------------------------
    let mut fmaps = Vec::with_capacity(n + 1);
    fmaps.push(input);
    for (l, pieces) in f_out_hist.iter().enumerate() {
        let layer = spec.base.layers[l];
        let mut f = Matrix::zeros(spec.base.batch, layer.d_out);
        for piece in pieces {
            f.paste(piece.rect.r0, piece.rect.c0, &piece.data);
        }
        fmaps.push(f);
    }

    (
        StepTensors {
            fmaps,
            errors,
            grads,
        },
        psum_log,
    )
}

/// The `ShardScales`-predicted psum volume at `(level, layer)` — what the
/// simulator charges, derived from the same fraction fold the planner
/// uses. The oracle's measured volumes must match (up to the integer
/// rounding of each level's split).
#[must_use]
pub fn predicted_psum(spec: &HierStepSpec, level: usize, l: usize) -> u64 {
    let layer = spec.base.layers[l];
    let b = spec.base.batch;
    // Fold integer splits (first-child side; volumes are uniform).
    let mut batch = (0usize, b);
    let mut d_in = (0usize, layer.d_in);
    let mut d_out = (0usize, layer.d_out);
    for ancestor in 0..level {
        let (t, frac) = spec.plans[ancestor][l];
        match t {
            PartitionType::TypeI => batch = split_range(batch, frac, false),
            PartitionType::TypeII => d_in = split_range(d_in, frac, false),
            PartitionType::TypeIII => d_out = split_range(d_out, frac, false),
        }
    }
    let (t, _) = spec.plans[level][l];
    match t {
        // ΔW shard: d_in × d_out (batch never shrinks W).
        PartitionType::TypeI => ((d_in.1 - d_in.0) * (d_out.1 - d_out.0)) as u64,
        // F_{l+1} shard: batch × d_out.
        PartitionType::TypeII => ((batch.1 - batch.0) * (d_out.1 - d_out.0)) as u64,
        // E_l shard: batch × d_in.
        PartitionType::TypeIII => ((batch.1 - batch.0) * (d_in.1 - d_in.0)) as u64,
    }
}

/// Convenience: the `ShardScales` fold the cost model would apply for the
/// same plan (fractions taken from the *integer* splits, so the two are
/// comparable exactly).
#[must_use]
pub fn scales_at(spec: &HierStepSpec, level: usize, l: usize) -> ShardScales {
    let layer = spec.base.layers[l];
    let b = spec.base.batch;
    let mut scales = ShardScales::full();
    let mut batch = (0usize, b);
    let mut d_in = (0usize, layer.d_in);
    let mut d_out = (0usize, layer.d_out);
    for ancestor in 0..level {
        let (t, frac) = spec.plans[ancestor][l];
        let share = match t {
            PartitionType::TypeI => {
                let new = split_range(batch, frac, false);
                let share = (new.1 - new.0) as f64 / (batch.1 - batch.0) as f64;
                batch = new;
                share
            }
            PartitionType::TypeII => {
                let new = split_range(d_in, frac, false);
                let share = (new.1 - new.0) as f64 / (d_in.1 - d_in.0) as f64;
                d_in = new;
                share
            }
            PartitionType::TypeIII => {
                let new = split_range(d_out, frac, false);
                let share = (new.1 - new.0) as f64 / (d_out.1 - d_out.0) as f64;
                d_out = new;
                share
            }
        };
        scales = scales.shrink(t, share);
    }
    scales
}

#[cfg(test)]
mod tests {
    use super::*;
    use PartitionType::{TypeI, TypeII, TypeIII};

    fn check(spec: &HierStepSpec) -> PsumLog {
        let want = crate::reference::run(&spec.base);
        let (got, log) = run(spec);
        assert!(want.approx_eq(&got, 1e-9), "hierarchical run diverged");
        log
    }

    #[test]
    fn two_level_uniform_type_i_matches_reference() {
        let spec = HierStepSpec::new(
            8,
            &[6, 5, 4],
            vec![
                vec![(TypeI, 0.5), (TypeI, 0.5)],
                vec![(TypeI, 0.5), (TypeI, 0.5)],
            ],
            Activation::Identity,
        );
        let log = check(&spec);
        // Type-I psum at level 0 moves the full A(W); at level 1 still the
        // full A(W) (weights never shrink under Type-I).
        assert_eq!(log[&(0, 0)], 30);
        assert_eq!(log[&(1, 0)], 30);
    }

    #[test]
    fn mixed_levels_match_reference_for_all_27_combinations() {
        for t0 in [TypeI, TypeII, TypeIII] {
            for t1 in [TypeI, TypeII, TypeIII] {
                for t2 in [TypeI, TypeII, TypeIII] {
                    // Every dimension supports three halvings (≥ 8).
                    let spec = HierStepSpec::new(
                        8,
                        &[8, 8, 8],
                        vec![
                            vec![(t0, 0.5); 2],
                            vec![(t1, 0.5); 2],
                            vec![(t2, 0.5); 2],
                        ],
                        Activation::Identity,
                    );
                    check(&spec);
                }
            }
        }
    }

    #[test]
    fn unequal_fractions_and_relu_match_reference() {
        let spec = HierStepSpec::new(
            10,
            &[9, 7, 5],
            vec![
                vec![(TypeI, 0.3), (TypeIII, 0.6)],
                vec![(TypeII, 0.7), (TypeI, 0.4)],
            ],
            Activation::Relu,
        );
        check(&spec);
    }

    #[test]
    fn measured_psums_match_shard_scale_predictions() {
        // The heart of the matter: every level's exchange volume equals
        // the prediction derived from the ShardScales fold — the same
        // algebra the simulator and the hierarchical search use.
        let cases = vec![
            vec![vec![(TypeI, 0.5); 3], vec![(TypeII, 0.5); 3]],
            vec![vec![(TypeII, 0.5); 3], vec![(TypeIII, 0.5); 3]],
            vec![vec![(TypeIII, 0.25); 3], vec![(TypeI, 0.75); 3]],
            vec![
                vec![(TypeI, 0.5), (TypeII, 0.5), (TypeIII, 0.5)],
                vec![(TypeIII, 0.5), (TypeI, 0.5), (TypeII, 0.5)],
            ],
        ];
        for plans in cases {
            let spec = HierStepSpec::new(8, &[8, 6, 4, 6], plans, Activation::Identity);
            let log = check(&spec);
            for level in 0..spec.plans.len() {
                for l in 0..spec.base.layers.len() {
                    let measured = log[&(level, l)];
                    let predicted = predicted_psum(&spec, level, l);
                    assert_eq!(
                        measured, predicted,
                        "level {level} layer {l}: measured {measured} vs predicted {predicted}"
                    );
                    // And the fraction-based ShardScales agrees with the
                    // integer-rect prediction.
                    let scales = scales_at(&spec, level, l);
                    let full = match spec.plans[level][l].0 {
                        TypeI => (spec.base.layers[l].d_in * spec.base.layers[l].d_out) as f64,
                        TypeII => (spec.base.batch * spec.base.layers[l].d_out) as f64,
                        TypeIII => (spec.base.batch * spec.base.layers[l].d_in) as f64,
                    };
                    let via_scales = full * scales.psum_scale(spec.plans[level][l].0);
                    assert!(
                        (via_scales - predicted as f64).abs() < 1e-9,
                        "level {level} layer {l}: scales {via_scales} vs {predicted}"
                    );
                }
            }
        }
    }

    #[test]
    fn three_levels_eight_devices() {
        let spec = HierStepSpec::new(
            16,
            &[8, 8, 8],
            vec![
                vec![(TypeI, 0.5); 2],
                vec![(TypeII, 0.5); 2],
                vec![(TypeIII, 0.5); 2],
            ],
            Activation::Relu,
        );
        let log = check(&spec);
        assert_eq!(log.len(), 3 * 2);
    }
}
