//! Structured tracing, metrics, and profiling hooks for AccPar.
//!
//! The planner, memo cache, and simulators are deterministic search
//! code — explaining *why* the DP picks each partition type per layer
//! (PAPER.md §6, Table 8) requires seeing the search, not just its
//! result. This crate provides that visibility with zero dependencies
//! and zero cost when disabled:
//!
//! * [`Obs`] — a cheap, cloneable handle. [`Obs::off`] is inert: no
//!   allocation, no clock reads, every hook compiles down to a branch
//!   on an `Option` that is `None`.
//! * [`Span`] / events — structured tracing with monotonic
//!   timestamps and parent/child nesting, delivered to a pluggable
//!   [`Subscriber`] ([`NoopSubscriber`], [`StderrSubscriber`],
//!   [`JsonLines`], [`Collector`]).
//! * [`Metrics`] — a lock-sharded registry of counters, gauges, and
//!   log₂-bucketed histograms ([`ScopedTimer`] feeds the latter).
//!
//! # Subscriber contract
//!
//! Subscribers must be `Send + Sync`; hooks may be invoked from any
//! worker thread of the planning pool. The crate guarantees:
//!
//! 1. `on_span_start` is called before any `on_event` carrying that
//!    span's id and before the matching `on_span_end`.
//! 2. Span ids are unique per [`Obs`] handle and never reused.
//! 3. Timestamps are monotonic per handle (taken from one
//!    [`Instant`] epoch) but only ordered *within* a thread; cross-
//!    thread hook delivery order is unspecified.
//! 4. Hooks are invoked synchronously on the instrumented thread —
//!    subscribers must not block for long and must not call back
//!    into the planner.
//!
//! ```
//! use accpar_obs::{Collector, Obs};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(Collector::new());
//! let obs = Obs::new(Arc::clone(&collector));
//! {
//!     let span = obs.span("plan", &[("layers", 16u64.into())]);
//!     span.event("decision", &[("ptype", "Type-I".into())]);
//! }
//! assert_eq!(collector.spans().len(), 1);
//! assert_eq!(collector.events_named("decision").len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
mod metrics;
mod subscriber;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, Histo, MetricValue, Metrics, MetricsSnapshot,
    ScopedTimer,
};
pub use subscriber::{Collector, JsonLines, NoopSubscriber, Record, StderrSubscriber};

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A typed field value attached to spans and events.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

/// A named field: `("layer", 3u64.into())`.
pub type Field = (&'static str, Value);

/// A span's identity and metadata as delivered to subscribers.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique (per [`Obs`] handle) span id, never reused.
    pub id: u64,
    /// Enclosing span's id, if any.
    pub parent: Option<u64>,
    /// Static span name (e.g. `"plan.level"`).
    pub name: &'static str,
    /// Nanoseconds since the handle's epoch.
    pub ts_ns: u64,
    /// Attached fields, in call order.
    pub fields: Vec<Field>,
}

/// A point event as delivered to subscribers.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Enclosing span's id, if the event was emitted inside one.
    pub span: Option<u64>,
    /// Static event name (e.g. `"decision"`).
    pub name: &'static str,
    /// Nanoseconds since the handle's epoch.
    pub ts_ns: u64,
    /// Attached fields, in call order.
    pub fields: Vec<Field>,
}

/// Receives tracing output. See the [crate docs](crate) for the
/// invocation contract.
pub trait Subscriber: Send + Sync {
    /// A span was opened.
    fn on_span_start(&self, span: &SpanRecord);
    /// The span closed; `dur_ns` is its wall-clock duration.
    fn on_span_end(&self, span: &SpanRecord, dur_ns: u64);
    /// A point event fired.
    fn on_event(&self, event: &EventRecord);
    /// A metrics snapshot was explicitly flushed via
    /// [`Obs::emit_metrics`]. Default: ignored.
    fn on_metrics(&self, snapshot: &MetricsSnapshot) {
        let _ = snapshot;
    }
}

impl<S: Subscriber + ?Sized> Subscriber for Arc<S> {
    fn on_span_start(&self, span: &SpanRecord) {
        (**self).on_span_start(span);
    }
    fn on_span_end(&self, span: &SpanRecord, dur_ns: u64) {
        (**self).on_span_end(span, dur_ns);
    }
    fn on_event(&self, event: &EventRecord) {
        (**self).on_event(event);
    }
    fn on_metrics(&self, snapshot: &MetricsSnapshot) {
        (**self).on_metrics(snapshot);
    }
}

struct Inner {
    subscriber: Box<dyn Subscriber>,
    metrics: Arc<Metrics>,
    epoch: Instant,
    next_id: AtomicU64,
}

/// Observability handle: tracing + metrics behind one cheap clone.
///
/// `Obs` is the single type instrumented code holds. [`Obs::off`]
/// (also [`Default`]) is completely inert; [`Obs::new`] attaches a
/// [`Subscriber`] and a fresh [`Metrics`] registry.
#[derive(Clone, Default)]
pub struct Obs {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for Obs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Obs {
    /// The inert handle: every hook is a no-op, nothing is allocated.
    pub const fn off() -> Self {
        Obs { inner: None }
    }

    /// An active handle delivering to `subscriber`, with a fresh
    /// [`Metrics`] registry.
    pub fn new(subscriber: impl Subscriber + 'static) -> Self {
        Self::with_metrics(subscriber, Arc::new(Metrics::new()))
    }

    /// An active handle delivering to `subscriber` and recording into
    /// an existing `metrics` registry (lets several handles share one
    /// registry).
    pub fn with_metrics(subscriber: impl Subscriber + 'static, metrics: Arc<Metrics>) -> Self {
        Obs {
            inner: Some(Arc::new(Inner {
                subscriber: Box::new(subscriber),
                metrics,
                epoch: Instant::now(),
                // Span id 0 is reserved as "no span".
                next_id: AtomicU64::new(1),
            })),
        }
    }

    /// Whether any subscriber is attached.
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The attached metrics registry, if enabled.
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    fn now_ns(inner: &Inner) -> u64 {
        inner.epoch.elapsed().as_nanos() as u64
    }

    /// Opens a root span. The span closes (and reports its duration)
    /// when the returned guard drops.
    pub fn span(&self, name: &'static str, fields: &[Field]) -> Span {
        self.span_at(name, None, fields)
    }

    /// Opens a span under an explicit parent id — for code that only
    /// carries a parent id across threads, not a [`Span`] reference.
    pub fn span_at(&self, name: &'static str, parent: Option<u64>, fields: &[Field]) -> Span {
        match &self.inner {
            None => Span {
                obs: Obs::off(),
                id: 0,
                name,
                start: None,
            },
            Some(inner) => {
                let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
                let record = SpanRecord {
                    id,
                    parent,
                    name,
                    ts_ns: Self::now_ns(inner),
                    fields: fields.to_vec(),
                };
                inner.subscriber.on_span_start(&record);
                Span {
                    obs: self.clone(),
                    id,
                    name,
                    start: Some(Instant::now()),
                }
            }
        }
    }

    /// Emits a point event with no enclosing span.
    pub fn event(&self, name: &'static str, fields: &[Field]) {
        self.event_at(name, None, fields);
    }

    /// Emits a point event under an explicit span id.
    pub fn event_at(&self, name: &'static str, span: Option<u64>, fields: &[Field]) {
        if let Some(inner) = &self.inner {
            inner.subscriber.on_event(&EventRecord {
                span,
                name,
                ts_ns: Self::now_ns(inner),
                fields: fields.to_vec(),
            });
        }
    }

    /// A counter handle; inert when the handle is off.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => Counter::inert(),
        }
    }

    /// A gauge handle; inert when the handle is off.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => Gauge::inert(),
        }
    }

    /// A histogram handle; inert when the handle is off.
    pub fn histogram(&self, name: &str) -> Histo {
        match &self.inner {
            Some(inner) => Histo::live(inner.metrics.histogram(name)),
            None => Histo::inert(),
        }
    }

    /// Starts a scoped timer feeding the named histogram (in
    /// nanoseconds); records on drop. Inert (no clock read) when off.
    pub fn timer(&self, name: &str) -> ScopedTimer {
        self.histogram(name).timer()
    }

    /// Flushes a sorted snapshot of the metrics registry to the
    /// subscriber's [`Subscriber::on_metrics`] hook.
    pub fn emit_metrics(&self) {
        if let Some(inner) = &self.inner {
            inner.subscriber.on_metrics(&inner.metrics.snapshot());
        }
    }
}

/// RAII guard for an open span. Dropping it reports the span's end
/// (with duration) to the subscriber.
#[derive(Debug)]
pub struct Span {
    obs: Obs,
    id: u64,
    name: &'static str,
    start: Option<Instant>,
}

impl Span {
    /// This span's id, or `None` for an inert span — pass it across
    /// threads and reopen children with [`Obs::span_at`].
    pub fn id(&self) -> Option<u64> {
        self.start.is_some().then_some(self.id)
    }

    /// Opens a child span.
    pub fn child(&self, name: &'static str, fields: &[Field]) -> Span {
        self.obs.span_at(name, self.id(), fields)
    }

    /// Emits an event inside this span.
    pub fn event(&self, name: &'static str, fields: &[Field]) {
        self.obs.event_at(name, self.id(), fields);
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let (Some(start), Some(inner)) = (self.start, &self.obs.inner) {
            let record = SpanRecord {
                id: self.id,
                parent: None,
                name: self.name,
                ts_ns: Obs::now_ns(inner),
                fields: Vec::new(),
            };
            inner
                .subscriber
                .on_span_end(&record, start.elapsed().as_nanos() as u64);
        }
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// Installs `obs` as the process-wide handle consulted by code with no
/// natural place to thread one through (the runtime pool, free
/// simulator functions). First call wins; returns whether this call
/// installed it.
pub fn install_global(obs: Obs) -> bool {
    GLOBAL.set(obs).is_ok()
}

/// The process-wide handle; inert unless [`install_global`] ran.
pub fn global() -> &'static Obs {
    static OFF: Obs = Obs { inner: None };
    GLOBAL.get().unwrap_or(&OFF)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_is_inert() {
        let obs = Obs::off();
        assert!(!obs.enabled());
        let span = obs.span("root", &[("k", 1u64.into())]);
        assert_eq!(span.id(), None);
        span.event("e", &[]);
        obs.counter("c").inc();
        obs.timer("t");
        obs.emit_metrics();
        assert!(obs.metrics().is_none());
    }

    #[test]
    fn span_ids_are_unique_and_nested() {
        let collector = Arc::new(Collector::new());
        let obs = Obs::new(Arc::clone(&collector));
        {
            let root = obs.span("root", &[]);
            let child = root.child("child", &[("depth", 1u64.into())]);
            child.event("tick", &[]);
        }
        let spans = collector.spans();
        assert_eq!(spans.len(), 2);
        let root = collector.span_named("root").unwrap();
        let child = collector.span_named("child").unwrap();
        assert_ne!(root.id, child.id);
        assert_eq!(child.parent, Some(root.id));
        let events = collector.events_named("tick");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].span, Some(child.id));
        // Both spans ended with a measured duration.
        assert_eq!(collector.ended_span_ids().len(), 2);
    }

    #[test]
    fn timestamps_are_monotonic_within_a_thread() {
        let collector = Arc::new(Collector::new());
        let obs = Obs::new(Arc::clone(&collector));
        for _ in 0..10 {
            obs.event("tick", &[]);
        }
        let ts: Vec<u64> = collector.events_named("tick").iter().map(|e| e.ts_ns).collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn global_defaults_to_inert() {
        // Never install in tests — the default must be inert.
        assert!(!global().enabled() || GLOBAL.get().is_some());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3usize), Value::U64(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x").to_string(), "x");
        assert_eq!(Value::from(2.5f64), Value::F64(2.5));
    }
}
