//! Lock-sharded metrics registry: counters, gauges, and log₂-bucketed
//! histograms, plus the [`ScopedTimer`] profiling hook.
//!
//! Registration (name → handle) takes a per-shard mutex; the hot path
//! (incrementing through an already-obtained handle) is purely atomic.
//! Shards are selected by a hash of the metric name, so unrelated
//! metrics registered concurrently from pool workers rarely contend.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of registry shards. A power of two so selection is a mask.
const SHARDS: usize = 8;

/// Number of histogram buckets: bucket `i` counts values `v` with
/// `bit_width(v) == i`, i.e. `v == 0` lands in bucket 0 and
/// `2^(i-1) <= v < 2^i` in bucket `i`.
pub(crate) const BUCKETS: usize = 65;

#[derive(Default)]
struct Shard {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<HashMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<HashMap<String, Arc<Histogram>>>,
}

/// Lock-sharded registry of named metrics.
///
/// Handles ([`Counter`], [`Gauge`], [`Histo`]) are cheap `Arc` clones;
/// instrumented code should obtain them once and update through them.
#[derive(Default)]
pub struct Metrics {
    shards: [Shard; SHARDS],
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("entries", &self.snapshot().entries.len())
            .finish()
    }
}

/// FNV-1a over the name; deterministic and seed-free so shard layout
/// (and thus lock contention) is reproducible run to run.
fn shard_index(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) & (SHARDS - 1)
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, name: &str) -> &Shard {
        &self.shards[shard_index(name)]
    }

    /// Registers (or retrieves) the named counter.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.shard(name).counters.lock().unwrap();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    /// Registers (or retrieves) the named gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.shard(name).gauges.lock().unwrap();
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0f64.to_bits())));
        Gauge(Some(Arc::clone(cell)))
    }

    /// Registers (or retrieves) the named histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.shard(name).histograms.lock().unwrap();
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time snapshot of every registered metric, sorted by
    /// name for deterministic output.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries = Vec::new();
        for shard in &self.shards {
            for (name, cell) in shard.counters.lock().unwrap().iter() {
                entries.push((name.clone(), MetricValue::Counter(cell.load(Ordering::Relaxed))));
            }
            for (name, cell) in shard.gauges.lock().unwrap().iter() {
                entries.push((
                    name.clone(),
                    MetricValue::Gauge(f64::from_bits(cell.load(Ordering::Relaxed))),
                ));
            }
            for (name, hist) in shard.histograms.lock().unwrap().iter() {
                entries.push((name.clone(), MetricValue::Histogram(hist.summary())));
            }
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { entries }
    }
}

/// Monotonically increasing counter handle. Inert handles (from a
/// disabled [`Obs`](crate::Obs)) drop updates.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    pub(crate) fn inert() -> Self {
        Counter(None)
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for inert handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-write-wins gauge handle storing an `f64`.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    pub(crate) fn inert() -> Self {
        Gauge(None)
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if let Some(cell) = &self.0 {
            cell.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 for inert handles).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |c| f64::from_bits(c.load(Ordering::Relaxed)))
    }
}

/// Fixed log₂-bucket histogram for non-negative integer samples
/// (typically nanoseconds). Bucket `i` covers `[2^(i-1), 2^i)`;
/// bucket 0 counts zeros. All updates are lock-free atomics.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.summary();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// The bucket index a value lands in: `bit_width(v)`.
    pub fn bucket_of(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The exclusive upper bound of bucket `i` (`None` for the last
    /// bucket, which is unbounded in practice).
    pub fn bucket_bound(i: usize) -> Option<u64> {
        (i < BUCKETS - 1).then(|| 1u64 << i)
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Aggregate view: count, sum, mean, and approximate quantiles.
    pub fn summary(&self) -> HistogramSummary {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSummary {
            count,
            sum,
            p50: quantile(&buckets, count, 0.50),
            p99: quantile(&buckets, count, 0.99),
        }
    }
}

/// Approximate quantile: the upper bound of the bucket containing the
/// q-th sample. Within a factor of 2 of the true value by
/// construction.
fn quantile(buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * q).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &b) in buckets.iter().enumerate() {
        seen += b;
        if seen >= rank {
            return Histogram::bucket_bound(i).unwrap_or(u64::MAX);
        }
    }
    u64::MAX
}

/// Aggregates of one histogram at snapshot time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Approximate median (upper bound of its log₂ bucket).
    pub p50: u64,
    /// Approximate 99th percentile (upper bound of its log₂ bucket).
    pub p99: u64,
}

impl HistogramSummary {
    /// Mean sample value, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric's value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram aggregates.
    Histogram(HistogramSummary),
}

/// Sorted point-in-time view of a [`Metrics`] registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter total by name, 0 when absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value by name, `None` when absent or not a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }
}

/// Histogram handle; inert when obtained from a disabled
/// [`Obs`](crate::Obs).
#[derive(Debug, Clone, Default)]
pub struct Histo(Option<Arc<Histogram>>);

impl Histo {
    pub(crate) fn inert() -> Self {
        Histo(None)
    }

    pub(crate) fn live(hist: Arc<Histogram>) -> Self {
        Histo(Some(hist))
    }

    /// Records one sample (dropped when inert).
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Starts a scoped timer feeding this histogram in nanoseconds.
    pub fn timer(&self) -> ScopedTimer {
        ScopedTimer {
            hist: self.clone(),
            start: self.0.is_some().then(Instant::now),
        }
    }
}

/// Profiling hook: records elapsed nanoseconds into a histogram when
/// dropped. Inert timers (from a disabled handle) never read the
/// clock.
#[derive(Debug)]
pub struct ScopedTimer {
    hist: Histo,
    start: Option<Instant>,
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.hist.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let m = Metrics::new();
        let c = m.counter("cache.hits");
        c.inc();
        c.add(4);
        assert_eq!(m.counter("cache.hits").get(), 5);
        let g = m.gauge("pool.depth");
        g.set(3.5);
        assert_eq!(m.gauge("pool.depth").get(), 3.5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(3), Some(8));
        assert_eq!(Histogram::bucket_bound(BUCKETS - 1), None);
    }

    #[test]
    fn histogram_summary_tracks_samples() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert!(s.mean() > 26.0 && s.mean() < 27.0);
        // p50 = 2nd sample (value 2) → bucket bound 2 or 4.
        assert!(s.p50 <= 4);
        // p99 = the 100 sample → bucket [64,128) → bound 128.
        assert_eq!(s.p99, 128);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let m = Metrics::new();
        m.counter("z.last").inc();
        m.counter("a.first").add(2);
        m.gauge("m.mid").set(1.0);
        m.histogram("h.hist").record(7);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("a.first"), 2);
        assert_eq!(snap.gauge("m.mid"), Some(1.0));
        assert!(matches!(
            snap.get("h.hist"),
            Some(MetricValue::Histogram(s)) if s.count == 1 && s.sum == 7
        ));
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let m = Metrics::new();
        let h = Histo::live(m.histogram("t"));
        {
            let _t = h.timer();
        }
        assert_eq!(m.histogram("t").summary().count, 1);
    }

    #[test]
    fn sharded_registration_under_contention() {
        let m = Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..100 {
                        m.counter(&format!("c{}", (t * 100 + i) % 16)).inc();
                    }
                });
            }
        });
        let total: u64 = m
            .snapshot()
            .entries
            .iter()
            .map(|(_, v)| match v {
                MetricValue::Counter(c) => *c,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 400);
    }
}
