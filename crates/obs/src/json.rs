//! Minimal JSON emitter and parser shared across the workspace.
//!
//! The workspace builds fully offline, so instead of an external
//! serialization crate this small value tree, pretty/compact printers,
//! and recursive-descent parser live here, next to the JSON-lines
//! subscriber whose output they speak. Users: the bench harness's
//! archival output and the `trace_check` validator (via the
//! `accpar_bench::json` re-export), and the persistent plan cache's
//! record codec in `accpar-core`.

use std::fmt::Write as _;

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number. Non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on output).
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Json)>) -> Self {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Looks a key up in an object (`None` on missing key or non-object).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses one JSON document (trailing whitespace allowed).
    ///
    /// # Errors
    ///
    /// A human-readable message with the byte offset of the first
    /// syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Pretty-prints with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders on one line with no whitespace — the JSON-lines record
    /// form. Deterministic for a given value tree (keys keep insertion
    /// order), which the plan cache relies on for checksummed records.
    #[must_use]
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) if n.is_finite() => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":", escape(k));
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) if n.is_finite() => {
                if *n == n.trunc() && n.abs() < 1e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Json::Arr(items) if items.is_empty() => out.push_str("[]"),
            Json::Arr(items) => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push(']');
            }
            Json::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Json::Obj(pairs) => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}\"{}\": ", escape(k));
                    v.write(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&close);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Self {
        Json::Num(n as f64)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Self {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

/// Recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "invalid \\u escape".to_string())?;
                            // Unpaired surrogates decode to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.pretty(), "null");
        assert_eq!(Json::Bool(true).pretty(), "true");
        assert_eq!(Json::Num(3.0).pretty(), "3");
        assert_eq!(Json::Num(0.25).pretty(), "0.25");
        assert_eq!(Json::Num(f64::NAN).pretty(), "null");
        assert_eq!(Json::str("a\"b\n").pretty(), "\"a\\\"b\\n\"");
    }

    #[test]
    fn compact_is_one_line_and_roundtrips() {
        let v = Json::obj(vec![
            ("key", Json::str("a\"b")),
            ("n", Json::from(0.625)),
            ("arr", Json::from(vec![1.0, 2.0])),
            ("obj", Json::obj(vec![("x", Json::Null)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n') && !line.contains(": "));
        assert_eq!(line, "{\"key\":\"a\\\"b\",\"n\":0.625,\"arr\":[1,2],\"obj\":{\"x\":null},\"empty\":[]}");
        assert_eq!(Json::parse(&line).unwrap(), v);
    }

    #[test]
    fn parse_roundtrips_pretty_output() {
        let v = Json::obj(vec![
            ("kind", Json::str("event")),
            ("ts_ns", Json::from(12345.0)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("fields", Json::obj(vec![("ratio", Json::from(0.625))])),
            ("arr", Json::from(vec![1.0, 2.0])),
        ]);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_rejects_garbage() {
        let line = "{\"name\":\"a\\\"b\\nc\",\"u\":\"\\u0041\"}";
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("a\"b\nc"));
        assert_eq!(v.get("u").and_then(Json::as_str), Some("A"));
        assert_eq!(v.get("missing"), None);
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
        assert_eq!(Json::parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
    }

    #[test]
    fn nested_structure_renders() {
        let v = Json::obj(vec![
            ("rows", Json::from(vec![1.0, 2.5])),
            ("name", Json::str("fig")),
            ("empty", Json::Arr(vec![])),
        ]);
        let text = v.pretty();
        assert!(text.starts_with("{\n"));
        assert!(text.contains("\"rows\": [\n"));
        assert!(text.contains("2.5"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with('}'));
        // Balanced braces and brackets.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                text.matches(open).count(),
                text.matches(close).count()
            );
        }
    }
}
