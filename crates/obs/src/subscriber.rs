//! Bundled [`Subscriber`] implementations: no-op, stderr
//! pretty-printer, JSON-lines writer, and an in-memory collector for
//! tests.

use crate::{EventRecord, Field, MetricValue, MetricsSnapshot, SpanRecord, Subscriber, Value};
use std::io::Write;
use std::sync::Mutex;

/// Discards everything. Useful to measure instrumentation overhead
/// with the tracing machinery active but output suppressed.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSubscriber;

impl Subscriber for NoopSubscriber {
    fn on_span_start(&self, _span: &SpanRecord) {}
    fn on_span_end(&self, _span: &SpanRecord, _dur_ns: u64) {}
    fn on_event(&self, _event: &EventRecord) {}
}

/// Human-readable pretty-printer to stderr, one line per record.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrSubscriber;

fn fmt_fields(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!(" {k}={v}"))
        .collect::<String>()
}

impl Subscriber for StderrSubscriber {
    fn on_span_start(&self, span: &SpanRecord) {
        eprintln!(
            "[obs] > {} #{}{}{}",
            span.name,
            span.id,
            span.parent
                .map(|p| format!(" (in #{p})"))
                .unwrap_or_default(),
            fmt_fields(&span.fields)
        );
    }

    fn on_span_end(&self, span: &SpanRecord, dur_ns: u64) {
        eprintln!(
            "[obs] < {} #{} ({:.3} ms)",
            span.name,
            span.id,
            dur_ns as f64 / 1e6
        );
    }

    fn on_event(&self, event: &EventRecord) {
        eprintln!(
            "[obs] * {}{}{}",
            event.name,
            event
                .span
                .map(|s| format!(" (in #{s})"))
                .unwrap_or_default(),
            fmt_fields(&event.fields)
        );
    }

    fn on_metrics(&self, snapshot: &MetricsSnapshot) {
        for (name, value) in &snapshot.entries {
            match value {
                MetricValue::Counter(v) => eprintln!("[obs] = {name} {v}"),
                MetricValue::Gauge(v) => eprintln!("[obs] = {name} {v}"),
                MetricValue::Histogram(s) => eprintln!(
                    "[obs] = {name} count={} mean={:.1} p50={} p99={}",
                    s.count,
                    s.mean(),
                    s.p50,
                    s.p99
                ),
            }
        }
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_value(v: &Value, out: &mut String) {
    match v {
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::F64(v) if v.is_finite() => out.push_str(&format!("{v}")),
        Value::F64(_) => out.push_str("null"),
        Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
        Value::Str(s) => {
            out.push('"');
            escape_json(s, out);
            out.push('"');
        }
    }
}

fn push_fields(fields: &[Field], out: &mut String) {
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json(k, out);
        out.push_str("\":");
        push_value(v, out);
    }
    out.push('}');
}

/// Writes one JSON object per line (JSON-lines / `.jsonl`). Records:
///
/// ```json
/// {"kind":"span_start","id":1,"parent":null,"name":"plan","ts_ns":0,"fields":{}}
/// {"kind":"span_end","id":1,"name":"plan","ts_ns":9,"dur_ns":9}
/// {"kind":"event","span":1,"name":"decision","ts_ns":5,"fields":{}}
/// {"kind":"metric","name":"cache.hits","type":"counter","value":3}
/// ```
///
/// The writer is buffered behind a mutex; call [`JsonLines::flush`]
/// (or drop the value) to make the output durable.
#[derive(Debug)]
pub struct JsonLines<W: Write + Send> {
    writer: Mutex<W>,
}

impl<W: Write + Send> JsonLines<W> {
    /// Wraps `writer`; every record becomes one line.
    pub fn new(writer: W) -> Self {
        JsonLines {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }

    fn write_line(&self, line: &str) {
        let mut w = self.writer.lock().unwrap();
        let _ = writeln!(w, "{line}");
    }
}

impl<W: Write + Send> Drop for JsonLines<W> {
    fn drop(&mut self) {
        self.flush();
    }
}

impl<W: Write + Send> Subscriber for JsonLines<W> {
    fn on_span_start(&self, span: &SpanRecord) {
        let mut line = format!("{{\"kind\":\"span_start\",\"id\":{}", span.id);
        match span.parent {
            Some(p) => line.push_str(&format!(",\"parent\":{p}")),
            None => line.push_str(",\"parent\":null"),
        }
        line.push_str(&format!(
            ",\"name\":\"{}\",\"ts_ns\":{}",
            span.name, span.ts_ns
        ));
        push_fields(&span.fields, &mut line);
        line.push('}');
        self.write_line(&line);
    }

    fn on_span_end(&self, span: &SpanRecord, dur_ns: u64) {
        self.write_line(&format!(
            "{{\"kind\":\"span_end\",\"id\":{},\"name\":\"{}\",\"ts_ns\":{},\"dur_ns\":{}}}",
            span.id, span.name, span.ts_ns, dur_ns
        ));
    }

    fn on_event(&self, event: &EventRecord) {
        let mut line = String::from("{\"kind\":\"event\"");
        match event.span {
            Some(s) => line.push_str(&format!(",\"span\":{s}")),
            None => line.push_str(",\"span\":null"),
        }
        line.push_str(&format!(
            ",\"name\":\"{}\",\"ts_ns\":{}",
            event.name, event.ts_ns
        ));
        push_fields(&event.fields, &mut line);
        line.push('}');
        self.write_line(&line);
    }

    fn on_metrics(&self, snapshot: &MetricsSnapshot) {
        for (name, value) in &snapshot.entries {
            let mut line = String::from("{\"kind\":\"metric\",\"name\":\"");
            escape_json(name, &mut line);
            line.push('"');
            match value {
                MetricValue::Counter(v) => {
                    line.push_str(&format!(",\"type\":\"counter\",\"value\":{v}"));
                }
                MetricValue::Gauge(v) => {
                    line.push_str(",\"type\":\"gauge\",\"value\":");
                    push_value(&Value::F64(*v), &mut line);
                }
                MetricValue::Histogram(s) => {
                    line.push_str(&format!(
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{}",
                        s.count, s.sum, s.p50, s.p99
                    ));
                }
            }
            line.push('}');
            self.write_line(&line);
        }
    }
}

/// One record captured by [`Collector`].
#[derive(Debug, Clone)]
pub enum Record {
    /// A span opened.
    SpanStart(SpanRecord),
    /// A span closed, with its duration in nanoseconds.
    SpanEnd(SpanRecord, u64),
    /// A point event fired.
    Event(EventRecord),
    /// A metrics snapshot was flushed.
    Metrics(MetricsSnapshot),
}

/// In-memory subscriber for tests: captures every record in arrival
/// order and offers query helpers for asserting span nesting and
/// metric values.
#[derive(Debug, Default)]
pub struct Collector {
    records: Mutex<Vec<Record>>,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// All captured records in arrival order.
    pub fn records(&self) -> Vec<Record> {
        self.records.lock().unwrap().clone()
    }

    /// Every span-start record.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::SpanStart(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    /// The first span-start with the given name.
    pub fn span_named(&self, name: &str) -> Option<SpanRecord> {
        self.spans().into_iter().find(|s| s.name == name)
    }

    /// Every event with the given name.
    pub fn events_named(&self, name: &str) -> Vec<EventRecord> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Event(e) if e.name == name => Some(e),
                _ => None,
            })
            .collect()
    }

    /// Ids of spans that have ended.
    pub fn ended_span_ids(&self) -> Vec<u64> {
        self.records()
            .into_iter()
            .filter_map(|r| match r {
                Record::SpanEnd(s, _) => Some(s.id),
                _ => None,
            })
            .collect()
    }

    /// The last flushed metrics snapshot, if any.
    pub fn last_metrics(&self) -> Option<MetricsSnapshot> {
        self.records()
            .into_iter()
            .rev()
            .find_map(|r| match r {
                Record::Metrics(m) => Some(m),
                _ => None,
            })
    }

    /// Whether `descendant` transitively nests under `ancestor`,
    /// following parent links through the captured span starts.
    pub fn nested_under(&self, descendant: u64, ancestor: u64) -> bool {
        let spans = self.spans();
        let mut cur = Some(descendant);
        while let Some(id) = cur {
            if id == ancestor {
                return true;
            }
            cur = spans.iter().find(|s| s.id == id).and_then(|s| s.parent);
        }
        false
    }
}

impl Subscriber for Collector {
    fn on_span_start(&self, span: &SpanRecord) {
        self.records
            .lock()
            .unwrap()
            .push(Record::SpanStart(span.clone()));
    }

    fn on_span_end(&self, span: &SpanRecord, dur_ns: u64) {
        self.records
            .lock()
            .unwrap()
            .push(Record::SpanEnd(span.clone(), dur_ns));
    }

    fn on_event(&self, event: &EventRecord) {
        self.records
            .lock()
            .unwrap()
            .push(Record::Event(event.clone()));
    }

    fn on_metrics(&self, snapshot: &MetricsSnapshot) {
        self.records
            .lock()
            .unwrap()
            .push(Record::Metrics(snapshot.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Metrics, Obs};
    use std::sync::Arc;

    #[test]
    fn jsonl_emits_one_object_per_line() {
        let buf: Vec<u8> = Vec::new();
        let sink = Arc::new(Mutex::new(buf));

        struct SharedSink(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedSink {
            fn write(&mut self, b: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let obs = Obs::new(JsonLines::new(SharedSink(Arc::clone(&sink))));
        {
            let span = obs.span("plan", &[("nets", 9u64.into())]);
            span.event("decision", &[("ptype", "Type-I \"quoted\"".into())]);
        }
        obs.counter("cache.hits").add(3);
        obs.emit_metrics();

        let text = String::from_utf8(sink.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // start, event, end, metric
        assert!(lines[0].contains("\"kind\":\"span_start\""));
        assert!(lines[0].contains("\"nets\":9"));
        assert!(lines[1].contains("\\\"quoted\\\""));
        assert!(lines[2].contains("\"dur_ns\":"));
        assert!(lines[3].contains("\"cache.hits\""));
        assert!(lines[3].contains("\"value\":3"));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn collector_tracks_nesting() {
        let collector = Arc::new(Collector::new());
        let obs = Obs::new(Arc::clone(&collector));
        let root = obs.span("root", &[]);
        let mid = root.child("mid", &[]);
        let leaf = mid.child("leaf", &[]);
        let leaf_id = leaf.id().unwrap();
        let root_id = root.id().unwrap();
        drop(leaf);
        drop(mid);
        drop(root);
        assert!(collector.nested_under(leaf_id, root_id));
        assert!(!collector.nested_under(root_id, leaf_id));
    }

    #[test]
    fn collector_captures_metrics_snapshot() {
        let collector = Arc::new(Collector::new());
        let metrics = Arc::new(Metrics::new());
        let obs = Obs::with_metrics(Arc::clone(&collector), metrics);
        obs.counter("evals").add(7);
        obs.emit_metrics();
        let snap = collector.last_metrics().unwrap();
        assert_eq!(snap.counter("evals"), 7);
    }

    #[test]
    fn escape_handles_control_chars() {
        let mut out = String::new();
        escape_json("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
