//! A fast, deterministic, non-cryptographic hasher shared by the memo
//! maps across the workspace.
//!
//! The multiply-rotate scheme of Firefox's `FxHash`: memo keys are
//! ~tens-to-hundreds of bytes of struct fields, and `SipHash`'s
//! per-write cost dominates sub-microsecond table cells. The maps built
//! on this hasher are never exposed to untrusted keys, so HashDoS
//! resistance buys nothing. Lookup results never depend on iteration
//! order, but determinism is free: the hash is seed-free and identical
//! across processes.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The multiply-rotate `FxHash` hasher (see the [module docs](self)).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word) ^ rest.len() as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`HashMap`] state plugging [`FxHasher`] in.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A [`HashMap`] keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
