//! Tensor shape algebra for the AccPar reproduction.
//!
//! AccPar (Song et al., HPCA 2020) reasons about DNN training entirely at
//! the level of *tensor shapes*: the size function `A(·)` (the product of
//! all dimension lengths), the three partitionable dimensions (`B`,
//! `D_{i,l}`, `D_{o,l}`), and the geometry of feature maps and kernels.
//! This crate provides those primitives:
//!
//! * [`FeatureShape`] — the shape of a feature-map / error tensor
//!   (`F_l` / `E_l`), 2-D for fully-connected layers and 4-D for
//!   convolutional layers;
//! * [`KernelShape`] — the shape of a weight / gradient tensor
//!   (`W_l` / `ΔW_l`);
//! * [`ConvGeometry`] — kernel window, stride and padding with output-size
//!   inference;
//! * [`DataFormat`] — element width (the paper trains in Google's
//!   `bfloat16`);
//! * [`split`] — integer-exact proportional splitting used when lowering a
//!   fractional partition ratio onto discrete tensor dimensions.
//!
//! # Example
//!
//! ```
//! use accpar_tensor::{FeatureShape, KernelShape, DataFormat};
//!
//! // AlexNet conv1 output on a batch of 512.
//! let fmap = FeatureShape::conv(512, 96, 55, 55);
//! assert_eq!(fmap.size(), 512 * 96 * 55 * 55);
//! assert_eq!(DataFormat::Bf16.bytes(fmap.size()), 2 * fmap.size());
//!
//! let kernel = KernelShape::conv(3, 96, 11, 11);
//! assert_eq!(kernel.size(), 3 * 96 * 11 * 11);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
mod format;
pub mod hash;
mod shape;
pub mod split;

pub use conv::ConvGeometry;
pub use error::ShapeError;
pub use format::DataFormat;
pub use shape::{FeatureShape, KernelShape, PartitionDim, TensorShape};
