use std::fmt;

/// Numeric data format used for tensors during training.
///
/// The paper's evaluation (§6.1) trains in `bfloat16`, Google's 16-bit
/// floating-point format; [`DataFormat::Bf16`] is therefore the default.
/// The format determines how a tensor *size* (`A(·)`, an element count)
/// converts into *bytes* for the communication model and the simulator.
///
/// # Example
///
/// ```
/// use accpar_tensor::DataFormat;
///
/// assert_eq!(DataFormat::Bf16.bytes_per_element(), 2);
/// assert_eq!(DataFormat::Fp32.bytes(1024), 4096);
/// assert_eq!(DataFormat::default(), DataFormat::Bf16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DataFormat {
    /// Google brain floating point: 1 sign, 8 exponent, 7 mantissa bits.
    #[default]
    Bf16,
    /// IEEE 754 half precision.
    Fp16,
    /// IEEE 754 single precision.
    Fp32,
    /// IEEE 754 double precision.
    Fp64,
}

impl DataFormat {
    /// Width of one element in bytes.
    #[must_use]
    pub const fn bytes_per_element(self) -> u64 {
        match self {
            DataFormat::Bf16 | DataFormat::Fp16 => 2,
            DataFormat::Fp32 => 4,
            DataFormat::Fp64 => 8,
        }
    }

    /// Width of one element in bits.
    #[must_use]
    pub const fn bits_per_element(self) -> u64 {
        self.bytes_per_element() * 8
    }

    /// Number of bytes occupied by `elements` elements of this format.
    #[must_use]
    pub const fn bytes(self, elements: u64) -> u64 {
        elements * self.bytes_per_element()
    }

    /// Fractional byte count for an *effective* (ratio-scaled) element
    /// count, used by the analytic cost model where partition ratios make
    /// tensor shares non-integral.
    #[must_use]
    pub fn bytes_f64(self, elements: f64) -> f64 {
        elements * self.bytes_per_element() as f64
    }
}

impl fmt::Display for DataFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataFormat::Bf16 => "bf16",
            DataFormat::Fp16 => "fp16",
            DataFormat::Fp32 => "fp32",
            DataFormat::Fp64 => "fp64",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_is_two_bytes() {
        assert_eq!(DataFormat::Bf16.bytes_per_element(), 2);
        assert_eq!(DataFormat::Bf16.bits_per_element(), 16);
    }

    #[test]
    fn byte_conversion_scales_linearly() {
        for fmt in [
            DataFormat::Bf16,
            DataFormat::Fp16,
            DataFormat::Fp32,
            DataFormat::Fp64,
        ] {
            assert_eq!(fmt.bytes(0), 0);
            assert_eq!(fmt.bytes(7), 7 * fmt.bytes_per_element());
            let eff = fmt.bytes_f64(2.5);
            assert!((eff - 2.5 * fmt.bytes_per_element() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DataFormat::Bf16.to_string(), "bf16");
        assert_eq!(DataFormat::Fp64.to_string(), "fp64");
    }

    #[test]
    fn default_matches_paper_evaluation() {
        assert_eq!(DataFormat::default(), DataFormat::Bf16);
    }
}
