use std::fmt;

/// Errors produced while constructing or combining tensor shapes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShapeError {
    /// A dimension length of zero was supplied where a positive length is
    /// required.
    ZeroDim {
        /// Human-readable name of the offending dimension.
        dim: &'static str,
    },
    /// A convolution window does not fit in the (padded) input feature map.
    WindowTooLarge {
        /// Padded input extent along the failing axis.
        input: usize,
        /// Kernel window extent along the failing axis.
        window: usize,
    },
    /// A stride of zero was supplied.
    ZeroStride,
    /// Two shapes that must agree (e.g. for a matrix multiplication) do
    /// not.
    Mismatch {
        /// Description of the expected relationship.
        expected: String,
        /// Description of what was found.
        found: String,
    },
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeError::ZeroDim { dim } => {
                write!(f, "dimension `{dim}` must be positive")
            }
            ShapeError::WindowTooLarge { input, window } => write!(
                f,
                "convolution window ({window}) exceeds padded input extent ({input})"
            ),
            ShapeError::ZeroStride => write!(f, "convolution stride must be positive"),
            ShapeError::Mismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let msgs = [
            ShapeError::ZeroDim { dim: "batch" }.to_string(),
            ShapeError::WindowTooLarge { input: 3, window: 5 }.to_string(),
            ShapeError::ZeroStride.to_string(),
            ShapeError::Mismatch {
                expected: "(3, 4)".into(),
                found: "(4, 3)".into(),
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "no trailing period: {m}");
            assert!(m.chars().next().unwrap().is_lowercase(), "lowercase: {m}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShapeError>();
    }
}
