use crate::error::ShapeError;
use std::fmt;

/// One of the three dimensions AccPar may partition (§3.2).
///
/// The paper's key observation is that the three tensor computations of a
/// training step mention only three dimensions — the mini-batch `B`, the
/// layer input size `D_{i,l}` and the layer output size `D_{o,l}` — and
/// that exactly one of them can be "free" in a valid partition. Each of
/// the three basic partition types corresponds to one of these dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PartitionDim {
    /// The mini-batch dimension `B` (partitioned by Type-I).
    Batch,
    /// The layer-input dimension `D_{i,l}` (partitioned by Type-II).
    Input,
    /// The layer-output dimension `D_{o,l}` (partitioned by Type-III).
    Output,
}

impl fmt::Display for PartitionDim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartitionDim::Batch => "B",
            PartitionDim::Input => "D_i",
            PartitionDim::Output => "D_o",
        };
        f.write_str(s)
    }
}

/// Shape of a feature-map or error tensor (`F_l` / `E_l`).
///
/// For a fully-connected layer this is the matrix `(B, D)`; for a
/// convolutional layer it is the 4-D tensor `(B, C, H, W)`. Following
/// §4.3 of the paper, the spatial extent `(H, W)` is treated as a *meta
/// dimension*: the partition types only ever split `B` or the channel
/// dimension, while `H × W` scales sizes and FLOP counts.
///
/// # Example
///
/// ```
/// use accpar_tensor::FeatureShape;
///
/// let fc = FeatureShape::fc(512, 4096);
/// assert_eq!(fc.size(), 512 * 4096);
/// assert_eq!(fc.spatial_size(), 1);
///
/// let conv = FeatureShape::conv(512, 64, 224, 224);
/// assert_eq!(conv.size(), 512 * 64 * 224 * 224);
/// assert_eq!(conv.spatial_size(), 224 * 224);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FeatureShape {
    batch: usize,
    channels: usize,
    /// `(height, width)`; `(1, 1)` for fully-connected activations.
    spatial: (usize, usize),
}

impl FeatureShape {
    /// Feature map of a fully-connected layer: shape `(batch, features)`.
    ///
    /// # Panics
    ///
    /// Panics if `batch` or `features` is zero; use [`FeatureShape::try_new`]
    /// for a fallible constructor.
    #[must_use]
    pub fn fc(batch: usize, features: usize) -> Self {
        Self::try_new(batch, features, (1, 1)).expect("dimensions must be positive")
    }

    /// Feature map of a convolutional layer: shape
    /// `(batch, channels, height, width)`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; use [`FeatureShape::try_new`] for a
    /// fallible constructor.
    #[must_use]
    pub fn conv(batch: usize, channels: usize, height: usize, width: usize) -> Self {
        Self::try_new(batch, channels, (height, width)).expect("dimensions must be positive")
    }

    /// Feature map of a sequence (transformer) layer: shape
    /// `(batch, seq_len, d_model)`.
    ///
    /// The sequence axis rides the §4.3 spatial *meta dimension* as
    /// `(seq_len, 1)` while `d_model` occupies the channel (feature)
    /// dimension. The partition types therefore split `B` (Type-I, which
    /// by extension shards the `B·S` token axis) or the feature dimension
    /// (Types II/III), while `S` scales sizes and FLOP counts — exactly
    /// the treatment the paper gives `H × W`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; use [`FeatureShape::try_new`]
    /// for a fallible constructor.
    #[must_use]
    pub fn seq(batch: usize, seq_len: usize, d_model: usize) -> Self {
        Self::try_new(batch, d_model, (seq_len, 1)).expect("dimensions must be positive")
    }

    /// Fallible constructor covering both the FC and CONV cases.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ZeroDim`] if any dimension is zero.
    pub fn try_new(
        batch: usize,
        channels: usize,
        spatial: (usize, usize),
    ) -> Result<Self, ShapeError> {
        if batch == 0 {
            return Err(ShapeError::ZeroDim { dim: "batch" });
        }
        if channels == 0 {
            return Err(ShapeError::ZeroDim { dim: "channels" });
        }
        if spatial.0 == 0 {
            return Err(ShapeError::ZeroDim { dim: "height" });
        }
        if spatial.1 == 0 {
            return Err(ShapeError::ZeroDim { dim: "width" });
        }
        Ok(Self {
            batch,
            channels,
            spatial,
        })
    }

    /// Mini-batch dimension `B`.
    #[must_use]
    pub const fn batch(&self) -> usize {
        self.batch
    }

    /// Channel (feature) dimension.
    #[must_use]
    pub const fn channels(&self) -> usize {
        self.channels
    }

    /// Spatial extent `(height, width)`; `(1, 1)` for FC activations.
    #[must_use]
    pub const fn spatial(&self) -> (usize, usize) {
        self.spatial
    }

    /// `height × width` of the meta dimension.
    #[must_use]
    pub const fn spatial_size(&self) -> usize {
        self.spatial.0 * self.spatial.1
    }

    /// Whether this is a flat (fully-connected) activation.
    #[must_use]
    pub const fn is_flat(&self) -> bool {
        self.spatial.0 == 1 && self.spatial.1 == 1
    }

    /// Whether this is a sequence-shaped activation: a spatial extent of
    /// `(S, 1)` with `S > 1`, as produced by [`FeatureShape::seq`].
    #[must_use]
    pub const fn is_seq(&self) -> bool {
        self.spatial.0 > 1 && self.spatial.1 == 1
    }

    /// Sequence length `S` of a sequence-shaped activation (1 for flat
    /// activations, which are degenerate length-one sequences).
    #[must_use]
    pub const fn seq_len(&self) -> usize {
        self.spatial.0
    }

    /// Token count `B·S`: the axis Type-I partitions on sequence shapes.
    #[must_use]
    pub const fn tokens(&self) -> u64 {
        self.batch as u64 * self.spatial_size() as u64
    }

    /// The paper's size function `A(·)`: the product of all dimension
    /// lengths.
    #[must_use]
    pub const fn size(&self) -> u64 {
        self.batch as u64 * self.channels as u64 * self.spatial_size() as u64
    }

    /// Returns this shape with a different batch size.
    #[must_use]
    pub fn with_batch(&self, batch: usize) -> Self {
        Self { batch, ..*self }
    }

    /// Returns this shape with a different channel count.
    #[must_use]
    pub fn with_channels(&self, channels: usize) -> Self {
        Self { channels, ..*self }
    }

    /// Flattens the spatial extent into the channel dimension, as done by
    /// a `Flatten` layer when transitioning from CONV to FC layers.
    #[must_use]
    pub fn flatten(&self) -> Self {
        Self {
            batch: self.batch,
            channels: self.channels * self.spatial_size(),
            spatial: (1, 1),
        }
    }

    /// Collapses the spatial extent into the sequence axis, keeping the
    /// channel dimension: `(B, C, H, W) → (B, C, (H·W, 1))`. This is the
    /// patch-grid-to-token transition of a vision transformer.
    #[must_use]
    pub fn to_sequence(&self) -> Self {
        Self {
            batch: self.batch,
            channels: self.channels,
            spatial: (self.spatial_size(), 1),
        }
    }

    /// Length of a partitionable dimension of this tensor.
    ///
    /// `Input` and `Output` both map onto the channel dimension here —
    /// whether a feature map plays the role of an input (`F_l`) or output
    /// (`F_{l+1}`) of a layer is decided by the caller.
    #[must_use]
    pub const fn dim_len(&self, dim: PartitionDim) -> usize {
        match dim {
            PartitionDim::Batch => self.batch,
            PartitionDim::Input | PartitionDim::Output => self.channels,
        }
    }
}

impl fmt::Display for FeatureShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_flat() {
            write!(f, "({}, {})", self.batch, self.channels)
        } else {
            write!(
                f,
                "({}, {}, {}, {})",
                self.batch, self.channels, self.spatial.0, self.spatial.1
            )
        }
    }
}

/// Shape of a weight or gradient tensor (`W_l` / `ΔW_l`).
///
/// For a fully-connected layer this is the matrix `(D_i, D_o)`; for a
/// convolutional layer it is the 4-D tensor
/// `(C_in, C_out, K_h, K_w)` with the kernel window as the meta dimension
/// (§4.3).
///
/// # Example
///
/// ```
/// use accpar_tensor::KernelShape;
///
/// // The example from §4.1 of the paper.
/// let k = KernelShape::conv(16, 32, 3, 3);
/// assert_eq!(k.size(), 4608);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelShape {
    c_in: usize,
    c_out: usize,
    /// `(kernel height, kernel width)`; `(1, 1)` for FC weights.
    window: (usize, usize),
}

impl KernelShape {
    /// Weight matrix of a fully-connected layer: shape `(d_in, d_out)`.
    ///
    /// # Panics
    ///
    /// Panics if `d_in` or `d_out` is zero; use [`KernelShape::try_new`]
    /// for a fallible constructor.
    #[must_use]
    pub fn fc(d_in: usize, d_out: usize) -> Self {
        Self::try_new(d_in, d_out, (1, 1)).expect("dimensions must be positive")
    }

    /// Convolution kernel: shape `(c_in, c_out, k_h, k_w)`.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero; use [`KernelShape::try_new`] for a
    /// fallible constructor.
    #[must_use]
    pub fn conv(c_in: usize, c_out: usize, k_h: usize, k_w: usize) -> Self {
        Self::try_new(c_in, c_out, (k_h, k_w)).expect("dimensions must be positive")
    }

    /// Fallible constructor covering both the FC and CONV cases.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ZeroDim`] if any dimension is zero.
    pub fn try_new(
        c_in: usize,
        c_out: usize,
        window: (usize, usize),
    ) -> Result<Self, ShapeError> {
        if c_in == 0 {
            return Err(ShapeError::ZeroDim { dim: "c_in" });
        }
        if c_out == 0 {
            return Err(ShapeError::ZeroDim { dim: "c_out" });
        }
        if window.0 == 0 {
            return Err(ShapeError::ZeroDim { dim: "kernel height" });
        }
        if window.1 == 0 {
            return Err(ShapeError::ZeroDim { dim: "kernel width" });
        }
        Ok(Self { c_in, c_out, window })
    }

    /// Input-channel dimension `D_{i,l}`.
    #[must_use]
    pub const fn c_in(&self) -> usize {
        self.c_in
    }

    /// Output-channel dimension `D_{o,l}`.
    #[must_use]
    pub const fn c_out(&self) -> usize {
        self.c_out
    }

    /// Kernel window `(k_h, k_w)`; `(1, 1)` for FC weights.
    #[must_use]
    pub const fn window(&self) -> (usize, usize) {
        self.window
    }

    /// `k_h × k_w` of the meta dimension.
    #[must_use]
    pub const fn window_size(&self) -> usize {
        self.window.0 * self.window.1
    }

    /// The paper's size function `A(·)`: the product of all dimension
    /// lengths.
    #[must_use]
    pub const fn size(&self) -> u64 {
        self.c_in as u64 * self.c_out as u64 * self.window_size() as u64
    }

    /// Length of a partitionable dimension of this tensor.
    ///
    /// The kernel has no batch dimension; under Type-I partitioning the
    /// kernel is replicated, so `Batch` reports length 1.
    #[must_use]
    pub const fn dim_len(&self, dim: PartitionDim) -> usize {
        match dim {
            PartitionDim::Batch => 1,
            PartitionDim::Input => self.c_in,
            PartitionDim::Output => self.c_out,
        }
    }
}

impl fmt::Display for KernelShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.window == (1, 1) {
            write!(f, "({}, {})", self.c_in, self.c_out)
        } else {
            write!(
                f,
                "({}, {}, {}, {})",
                self.c_in, self.c_out, self.window.0, self.window.1
            )
        }
    }
}

/// Either kind of tensor appearing in the three training computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TensorShape {
    /// A feature-map or error tensor.
    Feature(FeatureShape),
    /// A weight or gradient tensor.
    Kernel(KernelShape),
}

impl TensorShape {
    /// The paper's size function `A(·)`.
    #[must_use]
    pub const fn size(&self) -> u64 {
        match self {
            TensorShape::Feature(s) => s.size(),
            TensorShape::Kernel(s) => s.size(),
        }
    }
}

impl From<FeatureShape> for TensorShape {
    fn from(s: FeatureShape) -> Self {
        TensorShape::Feature(s)
    }
}

impl From<KernelShape> for TensorShape {
    fn from(s: KernelShape) -> Self {
        TensorShape::Kernel(s)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorShape::Feature(s) => s.fmt(f),
            TensorShape::Kernel(s) => s.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_size_examples() {
        // "the size of a 4-by-5 matrix is 20"
        let m = FeatureShape::fc(4, 5);
        assert_eq!(m.size(), 20);
        // "a kernel whose input channel is 16, kernel window width is 3,
        // kernel window length is 3 and output channel is 32, is 4,608"
        let k = KernelShape::conv(16, 32, 3, 3);
        assert_eq!(k.size(), 4608);
    }

    #[test]
    fn zero_dims_rejected() {
        assert_eq!(
            FeatureShape::try_new(0, 5, (1, 1)),
            Err(ShapeError::ZeroDim { dim: "batch" })
        );
        assert_eq!(
            FeatureShape::try_new(4, 0, (1, 1)),
            Err(ShapeError::ZeroDim { dim: "channels" })
        );
        assert_eq!(
            KernelShape::try_new(4, 5, (0, 3)),
            Err(ShapeError::ZeroDim { dim: "kernel height" })
        );
    }

    #[test]
    fn flatten_preserves_size() {
        let s = FeatureShape::conv(32, 256, 6, 6);
        let flat = s.flatten();
        assert_eq!(flat.size(), s.size());
        assert!(flat.is_flat());
        assert_eq!(flat.channels(), 256 * 36);
    }

    #[test]
    fn seq_shapes_ride_the_spatial_meta_dimension() {
        let s = FeatureShape::seq(32, 128, 768);
        assert_eq!(s.batch(), 32);
        assert_eq!(s.channels(), 768);
        assert_eq!(s.seq_len(), 128);
        assert_eq!(s.spatial(), (128, 1));
        assert_eq!(s.size(), 32 * 128 * 768);
        assert_eq!(s.tokens(), 32 * 128);
        assert!(s.is_seq());
        assert!(!s.is_flat());
        // A flat activation is a degenerate length-one sequence.
        let flat = FeatureShape::fc(32, 768);
        assert!(!flat.is_seq());
        assert_eq!(flat.seq_len(), 1);
        assert_eq!(flat.tokens(), 32);
    }

    #[test]
    fn to_sequence_keeps_channels() {
        let grid = FeatureShape::conv(8, 768, 14, 14);
        let tokens = grid.to_sequence();
        assert_eq!(tokens, FeatureShape::seq(8, 196, 768));
        assert_eq!(tokens.size(), grid.size());
        assert!(tokens.is_seq());
    }

    #[test]
    fn with_batch_and_channels() {
        let s = FeatureShape::conv(8, 3, 32, 32);
        assert_eq!(s.with_batch(4).batch(), 4);
        assert_eq!(s.with_channels(16).channels(), 16);
        assert_eq!(s.with_batch(4).channels(), 3);
    }

    #[test]
    fn dim_len_maps_dimensions() {
        let f = FeatureShape::conv(8, 3, 32, 32);
        assert_eq!(f.dim_len(PartitionDim::Batch), 8);
        assert_eq!(f.dim_len(PartitionDim::Input), 3);
        assert_eq!(f.dim_len(PartitionDim::Output), 3);
        let k = KernelShape::conv(3, 64, 3, 3);
        assert_eq!(k.dim_len(PartitionDim::Batch), 1);
        assert_eq!(k.dim_len(PartitionDim::Input), 3);
        assert_eq!(k.dim_len(PartitionDim::Output), 64);
    }

    #[test]
    fn display_formats() {
        assert_eq!(FeatureShape::fc(4, 5).to_string(), "(4, 5)");
        assert_eq!(FeatureShape::conv(4, 5, 6, 7).to_string(), "(4, 5, 6, 7)");
        assert_eq!(KernelShape::fc(4, 5).to_string(), "(4, 5)");
        assert_eq!(KernelShape::conv(4, 5, 3, 3).to_string(), "(4, 5, 3, 3)");
        assert_eq!(PartitionDim::Batch.to_string(), "B");
        assert_eq!(PartitionDim::Input.to_string(), "D_i");
        assert_eq!(PartitionDim::Output.to_string(), "D_o");
    }

    #[test]
    fn tensor_shape_conversions() {
        let f: TensorShape = FeatureShape::fc(2, 3).into();
        let k: TensorShape = KernelShape::fc(3, 4).into();
        assert_eq!(f.size(), 6);
        assert_eq!(k.size(), 12);
        assert_eq!(f.to_string(), "(2, 3)");
    }
}
