//! Integer-exact proportional splitting.
//!
//! The analytic cost model works with fractional partition ratios
//! (`α ∈ [0, 1]`), but the simulator must lower a ratio onto discrete
//! tensor dimensions — e.g. splitting a batch of 512 samples `0.7 / 0.3`
//! yields `358 / 154`, not `358.4 / 153.6`. The functions here perform
//! that lowering while guaranteeing the shares are non-negative and sum to
//! the original length (largest-remainder apportionment).
//!
//! # Example
//!
//! ```
//! use accpar_tensor::split;
//!
//! assert_eq!(split::split_two(512, 0.7), (358, 154));
//! assert_eq!(split::split_many(10, &[0.5, 0.25, 0.25]), vec![5, 3, 2]);
//! ```

/// Splits `n` into two integer shares proportional to `alpha : 1 − alpha`.
///
/// The first share is `round(alpha · n)` clamped so both shares stay in
/// `[0, n]`; the shares always sum to `n`.
///
/// # Panics
///
/// Panics if `alpha` is not a finite number in `[0, 1]`.
///
/// # Example
///
/// ```
/// use accpar_tensor::split::split_two;
///
/// assert_eq!(split_two(10, 0.5), (5, 5));
/// assert_eq!(split_two(10, 0.0), (0, 10));
/// assert_eq!(split_two(1, 0.7), (1, 0));
/// ```
#[must_use]
pub fn split_two(n: usize, alpha: f64) -> (usize, usize) {
    assert!(
        alpha.is_finite() && (0.0..=1.0).contains(&alpha),
        "alpha must be a finite number in [0, 1], got {alpha}"
    );
    let first = ((alpha * n as f64).round() as usize).min(n);
    (first, n - first)
}

/// Splits `n` into `weights.len()` integer shares proportional to
/// `weights`, using largest-remainder apportionment so the shares sum to
/// exactly `n`.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative or non-finite value,
/// or sums to zero.
///
/// # Example
///
/// ```
/// use accpar_tensor::split::split_many;
///
/// // Shares sum to n even when naive rounding would not.
/// assert_eq!(split_many(100, &[1.0, 1.0, 1.0]).iter().sum::<usize>(), 100);
/// ```
#[must_use]
pub fn split_many(n: usize, weights: &[f64]) -> Vec<usize> {
    assert!(!weights.is_empty(), "weights must be non-empty");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative, got {w}");
            w
        })
        .sum();
    assert!(total > 0.0, "weights must not all be zero");

    // Floor every quota, then hand the leftover units to the largest
    // fractional remainders (ties broken by index for determinism).
    let quotas: Vec<f64> = weights.iter().map(|w| w / total * n as f64).collect();
    let mut shares: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
    let assigned: usize = shares.iter().sum();
    let mut leftover = n - assigned;

    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = quotas[a] - quotas[a].floor();
        let fb = quotas[b] - quotas[b].floor();
        fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
    });
    for idx in order {
        if leftover == 0 {
            break;
        }
        shares[idx] += 1;
        leftover -= 1;
    }
    shares
}

/// The *effective* (fractional) share of a dimension of length `n` under
/// ratio `alpha`, as used by the analytic cost model.
///
/// Unlike [`split_two`] this does not round: the cost model in §4 of the
/// paper treats shares as real numbers.
#[must_use]
pub fn effective_share(n: u64, alpha: f64) -> f64 {
    n as f64 * alpha
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_two_basics() {
        assert_eq!(split_two(512, 0.5), (256, 256));
        assert_eq!(split_two(512, 1.0), (512, 0));
        assert_eq!(split_two(512, 0.0), (0, 512));
        assert_eq!(split_two(0, 0.3), (0, 0));
    }

    #[test]
    #[should_panic(expected = "alpha must be")]
    fn split_two_rejects_out_of_range() {
        let _ = split_two(10, 1.5);
    }

    #[test]
    #[should_panic(expected = "alpha must be")]
    fn split_two_rejects_nan() {
        let _ = split_two(10, f64::NAN);
    }

    #[test]
    fn split_many_exactness() {
        assert_eq!(split_many(7, &[1.0, 1.0]), vec![4, 3]);
        assert_eq!(split_many(3, &[0.5, 0.5, 0.5, 0.5]).iter().sum::<usize>(), 3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn split_many_rejects_empty() {
        let _ = split_many(10, &[]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn split_many_rejects_zero_weights() {
        let _ = split_many(10, &[0.0, 0.0]);
    }

    #[test]
    fn effective_share_is_exact() {
        assert_eq!(effective_share(512, 0.25), 128.0);
        assert_eq!(effective_share(3, 1.0 / 3.0), 1.0);
    }

    /// Deterministic case source for the split invariants: a seeded
    /// xorshift stream over sizes, ratios, and weight vectors.
    fn cases() -> impl Iterator<Item = (usize, f64, Vec<f64>)> {
        let mut state = 0x1234_5678_9abc_def1u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..200).map(move |_| {
            let n = (next() % 100_000) as usize;
            let alpha = (next() % 1_000_001) as f64 / 1e6;
            let len = 1 + (next() % 7) as usize;
            let weights: Vec<f64> = (0..len)
                .map(|_| 0.01 + (next() % 10_000) as f64 / 100.0)
                .collect();
            (n, alpha, weights)
        })
    }

    #[test]
    fn split_two_sums_to_n() {
        for (n, alpha, _) in cases() {
            let (a, b) = split_two(n, alpha);
            assert_eq!(a + b, n);
        }
    }

    #[test]
    fn split_two_is_monotone_in_alpha() {
        for (n, a1, _) in cases() {
            let n = 1 + n % 10_000;
            let a2 = (a1 * 0.7 + 0.29).min(1.0);
            let (lo, hi) = if a1 <= a2 { (a1, a2) } else { (a2, a1) };
            assert!(split_two(n, lo).0 <= split_two(n, hi).0);
        }
    }

    #[test]
    fn split_many_sums_to_n() {
        for (n, _, weights) in cases() {
            let shares = split_many(n, &weights);
            assert_eq!(shares.iter().sum::<usize>(), n);
            assert_eq!(shares.len(), weights.len());
        }
    }

    #[test]
    fn split_many_stays_within_one_of_quota() {
        for (n, _, weights) in cases() {
            let n = n % 10_000;
            let total: f64 = weights.iter().sum();
            let shares = split_many(n, &weights);
            for (share, w) in shares.iter().zip(&weights) {
                let quota = w / total * n as f64;
                assert!((*share as f64 - quota).abs() < 1.0 + 1e-9);
            }
        }
    }
}
