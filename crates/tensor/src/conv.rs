use crate::error::ShapeError;
use std::fmt;

/// Geometry of a 2-D convolution or pooling window: kernel extent, stride
/// and zero padding.
///
/// The output spatial extent follows the standard relation
/// `out = (in + 2·pad − k) / stride + 1` (floor division), the convention
/// used by the networks in the paper's evaluation (AlexNet, VGG, ResNet).
///
/// # Example
///
/// ```
/// use accpar_tensor::ConvGeometry;
///
/// // AlexNet conv1: 11×11 kernel, stride 4, no padding, 224×224 input.
/// let g = ConvGeometry::new(11, 4, 2);
/// assert_eq!(g.output_extent((224, 224)).unwrap(), (55, 55));
///
/// // A VGG 3×3 "same" convolution.
/// let same = ConvGeometry::same(3);
/// assert_eq!(same.output_extent((112, 112)).unwrap(), (112, 112));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
}

impl ConvGeometry {
    /// Square kernel with uniform stride and padding.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero; use
    /// [`ConvGeometry::try_new`] for a fallible constructor.
    #[must_use]
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        Self::try_new((kernel, kernel), (stride, stride), (padding, padding))
            .expect("kernel and stride must be positive")
    }

    /// Fully general constructor with per-axis parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ZeroDim`] for a zero kernel extent and
    /// [`ShapeError::ZeroStride`] for a zero stride.
    pub fn try_new(
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<Self, ShapeError> {
        if kernel.0 == 0 || kernel.1 == 0 {
            return Err(ShapeError::ZeroDim { dim: "kernel" });
        }
        if stride.0 == 0 || stride.1 == 0 {
            return Err(ShapeError::ZeroStride);
        }
        Ok(Self {
            kernel,
            stride,
            padding,
        })
    }

    /// Odd square kernel with stride 1 and "same" padding, so the output
    /// extent equals the input extent — the shape of every VGG and most
    /// ResNet convolutions.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is even (no symmetric same padding exists) or
    /// zero.
    #[must_use]
    pub fn same(kernel: usize) -> Self {
        assert!(kernel % 2 == 1, "same padding requires an odd kernel");
        Self::new(kernel, 1, kernel / 2)
    }

    /// A 1×1 convolution with the given stride — the projection shortcut
    /// and bottleneck shape in ResNet.
    #[must_use]
    pub fn pointwise(stride: usize) -> Self {
        Self::new(1, stride, 0)
    }

    /// Kernel extent `(k_h, k_w)`.
    #[must_use]
    pub const fn kernel(&self) -> (usize, usize) {
        self.kernel
    }

    /// Stride `(s_h, s_w)`.
    #[must_use]
    pub const fn stride(&self) -> (usize, usize) {
        self.stride
    }

    /// Zero padding `(p_h, p_w)` applied to each border.
    #[must_use]
    pub const fn padding(&self) -> (usize, usize) {
        self.padding
    }

    /// `k_h × k_w`.
    #[must_use]
    pub const fn window_size(&self) -> usize {
        self.kernel.0 * self.kernel.1
    }

    /// Output spatial extent for the given input extent.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::WindowTooLarge`] if the kernel does not fit in
    /// the padded input.
    pub fn output_extent(&self, input: (usize, usize)) -> Result<(usize, usize), ShapeError> {
        let out = |n: usize, k: usize, s: usize, p: usize| -> Result<usize, ShapeError> {
            let padded = n + 2 * p;
            if padded < k {
                return Err(ShapeError::WindowTooLarge {
                    input: padded,
                    window: k,
                });
            }
            Ok((padded - k) / s + 1)
        };
        Ok((
            out(input.0, self.kernel.0, self.stride.0, self.padding.0)?,
            out(input.1, self.kernel.1, self.stride.1, self.padding.1)?,
        ))
    }
}

impl fmt::Display for ConvGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}/{}", self.kernel.0, self.kernel.1, self.stride.0)?;
        if self.padding != (0, 0) {
            write!(f, " p={},{}", self.padding.0, self.padding.1)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_conv1_geometry() {
        let g = ConvGeometry::new(11, 4, 2);
        assert_eq!(g.output_extent((224, 224)).unwrap(), (55, 55));
    }

    #[test]
    fn same_padding_preserves_extent() {
        for k in [1usize, 3, 5, 7, 11] {
            let g = ConvGeometry::same(k);
            for n in [7usize, 14, 28, 224] {
                assert_eq!(g.output_extent((n, n)).unwrap(), (n, n), "k={k} n={n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd kernel")]
    fn same_padding_rejects_even_kernel() {
        let _ = ConvGeometry::same(2);
    }

    #[test]
    fn pointwise_stride_two_halves_extent() {
        let g = ConvGeometry::pointwise(2);
        assert_eq!(g.output_extent((56, 56)).unwrap(), (28, 28));
        // Odd extents round up under the floor convention: (55-1)/2+1 = 28.
        assert_eq!(g.output_extent((55, 55)).unwrap(), (28, 28));
    }

    #[test]
    fn pooling_window_2x2_stride_2() {
        let g = ConvGeometry::new(2, 2, 0);
        assert_eq!(g.output_extent((224, 224)).unwrap(), (112, 112));
    }

    #[test]
    fn window_too_large_is_reported() {
        let g = ConvGeometry::new(7, 1, 0);
        assert_eq!(
            g.output_extent((5, 5)),
            Err(ShapeError::WindowTooLarge { input: 5, window: 7 })
        );
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(ConvGeometry::try_new((0, 1), (1, 1), (0, 0)).is_err());
        assert_eq!(
            ConvGeometry::try_new((3, 3), (0, 1), (0, 0)),
            Err(ShapeError::ZeroStride)
        );
    }

    #[test]
    fn output_extent_is_monotone_in_input() {
        for k in 1usize..8 {
            for s in 1usize..4 {
                for p in 0usize..4 {
                    let g = ConvGeometry::try_new((k, k), (s, s), (p, p)).unwrap();
                    for n in (1usize..128).step_by(3) {
                        if let (Ok(small), Ok(big)) =
                            (g.output_extent((n, n)), g.output_extent((n + 1, n + 1)))
                        {
                            assert!(big.0 >= small.0);
                            assert!(big.1 >= small.1);
                            // Output never exceeds padded input.
                            assert!(small.0 <= n + 2 * p);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(ConvGeometry::new(3, 1, 1).to_string(), "3x3/1 p=1,1");
        assert_eq!(ConvGeometry::new(2, 2, 0).to_string(), "2x2/2");
    }
}
