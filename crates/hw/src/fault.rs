//! Deterministic fault injection for accelerator arrays.
//!
//! A [`FaultModel`] is a seeded, reproducible set of hardware
//! misbehaviors applied to a [`GroupTree`](crate::GroupTree):
//!
//! * **compute slowdown** — a leaf group (straggler) runs at a fraction
//!   of its peak FLOP/s;
//! * **bandwidth degradation** — the link at one bisection cut delivers
//!   a fraction of its nominal bytes/s;
//! * **transient stall** — a leaf stalls for a fixed window at the start
//!   of every training step (e.g. ECC scrubbing, preemption);
//! * **dropout** — a leaf is gone entirely; plans touching it cannot
//!   run and the planner must re-plan on the reduced array.
//!
//! Targets are indices into the tree the model is applied to:
//! [`FaultTarget::Leaf`] counts leaves left to right,
//! [`FaultTarget::Cut`] counts internal nodes in pre-order — the same
//! orders the simulator's geometry walk uses, so a fault lands on
//! exactly the group/link the simulator charges.
//!
//! Factors are *remaining capability* in `(0, 1]`: a leaf at `0.5`
//! compute runs at half speed; a cut at `0.25` bandwidth moves bytes at
//! a quarter of its nominal rate.
//!
//! # Example
//!
//! ```
//! use accpar_hw::{FaultModel, FaultTarget};
//!
//! // One straggler leaf at half speed, one cut at quarter bandwidth.
//! let faults = FaultModel::new()
//!     .slow_leaf(0, 0.5)?
//!     .degrade_cut(1, 0.25)?;
//! assert_eq!(faults.compute_factor(0), 0.5);
//! assert_eq!(faults.bandwidth_factor(1), 0.25);
//! assert!(!faults.is_dropped(0));
//! # Ok::<(), accpar_hw::HwError>(())
//! ```

use crate::error::HwError;
use crate::rng::StdRng;
use std::fmt;

/// What a fault hits: one leaf group or one bisection cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A leaf of the group tree, counted left to right.
    Leaf(usize),
    /// An internal node's cut link, counted in pre-order.
    Cut(usize),
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Leaf(i) => write!(f, "leaf {i}"),
            FaultTarget::Cut(i) => write!(f, "cut {i}"),
        }
    }
}

/// How the target misbehaves.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum FaultKind {
    /// The target computes at `factor` of its nominal FLOP/s
    /// (`0 < factor <= 1`; only meaningful on leaves).
    ComputeSlowdown {
        /// Remaining compute capability.
        factor: f64,
    },
    /// The target's link moves bytes at `factor` of its nominal rate
    /// (`0 < factor <= 1`; only meaningful on cuts).
    BandwidthDegradation {
        /// Remaining bandwidth capability.
        factor: f64,
    },
    /// The target is unavailable for `secs` at the start of every step
    /// (only meaningful on leaves).
    TransientStall {
        /// Stall window in seconds.
        secs: f64,
    },
    /// The target is gone entirely (only meaningful on leaves).
    Dropout,
}

impl FaultKind {
    /// Validates the kind's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when a factor is outside
    /// `(0, 1]` or a stall window is negative or non-finite.
    pub fn validate(&self) -> Result<(), HwError> {
        match *self {
            FaultKind::ComputeSlowdown { factor } | FaultKind::BandwidthDegradation { factor } => {
                if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                    return Err(HwError::InvalidFault(format!(
                        "fault factor must be in (0, 1], got {factor}"
                    )));
                }
            }
            FaultKind::TransientStall { secs } => {
                if !secs.is_finite() || secs < 0.0 {
                    return Err(HwError::InvalidFault(format!(
                        "stall window must be non-negative and finite, got {secs}"
                    )));
                }
            }
            FaultKind::Dropout => {}
        }
        Ok(())
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::ComputeSlowdown { factor } => write!(f, "compute at {factor:.2}x"),
            FaultKind::BandwidthDegradation { factor } => write!(f, "bandwidth at {factor:.2}x"),
            FaultKind::TransientStall { secs } => write!(f, "stall {:.3} ms", secs * 1e3),
            FaultKind::Dropout => write!(f, "dropout"),
        }
    }
}

/// One injected fault: a target and a kind.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fault {
    /// What the fault hits.
    pub target: FaultTarget,
    /// How the target misbehaves.
    pub kind: FaultKind,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.target, self.kind)
    }
}

/// A deterministic, seeded set of injected faults.
///
/// Construct with the chainable builders ([`slow_leaf`](Self::slow_leaf),
/// [`degrade_cut`](Self::degrade_cut), [`stall_leaf`](Self::stall_leaf),
/// [`drop_leaf`](Self::drop_leaf)) or sample a random scenario with
/// [`random`](Self::random). The seed is carried alongside the faults so
/// a scenario can always be reported and regenerated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultModel {
    seed: u64,
    faults: Vec<Fault>,
}

impl FaultModel {
    /// Floor for composed compute/bandwidth factors.
    ///
    /// Each individual fault factor is validated into `(0, 1]`, but a
    /// chain of repeated faults on one target multiplies factors and can
    /// underflow toward zero, producing effectively-infinite simulated
    /// times and ill-conditioned planner costs. Composed factors are
    /// clamped to this epsilon: a target is never *slower* than a
    /// millionth of nominal short of being dropped outright.
    pub const FACTOR_FLOOR: f64 = 1e-6;

    /// An empty fault model (seed 0, no faults).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty fault model carrying an explicit seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Samples `n_faults` random faults over `n_leaves` leaves and
    /// `n_cuts` cuts, fully determined by `seed`: compute factors in
    /// `[0.25, 0.95]`, bandwidth factors in `[0.1, 0.9]`, stall windows
    /// in `[0.1, 10]` ms. Dropout is never sampled — it changes the
    /// array shape and is injected explicitly when wanted.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when the tree has no leaves or
    /// no cuts to target.
    pub fn random(
        seed: u64,
        n_leaves: usize,
        n_cuts: usize,
        n_faults: usize,
    ) -> Result<Self, HwError> {
        if n_leaves == 0 {
            return Err(HwError::InvalidFault(
                "cannot sample faults over zero leaves".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut model = Self::with_seed(seed);
        for _ in 0..n_faults {
            let roll = if n_cuts == 0 {
                // Only leaf faults are possible.
                rng.gen_range(0, 2) * 2
            } else {
                rng.gen_range(0, 3)
            };
            model = match roll {
                0 => {
                    let leaf = rng.gen_range(0, n_leaves);
                    model.slow_leaf(leaf, rng.gen_range_f64(0.25, 0.95))?
                }
                1 => {
                    let cut = rng.gen_range(0, n_cuts);
                    model.degrade_cut(cut, rng.gen_range_f64(0.1, 0.9))?
                }
                _ => {
                    let leaf = rng.gen_range(0, n_leaves);
                    model.stall_leaf(leaf, rng.gen_range_f64(1e-4, 1e-2))?
                }
            };
        }
        Ok(model)
    }

    /// Adds a validated fault.
    ///
    /// Pushing a [`FaultKind::Dropout`] supersedes any rate/stall faults
    /// already targeting that leaf (a dead board has no remaining rate)
    /// and is idempotent.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when the kind's parameters are
    /// out of range (see [`FaultKind::validate`]), and
    /// [`HwError::ContradictoryFault`] when a rate or stall fault
    /// targets a leaf an earlier entry already dropped.
    pub fn push(mut self, fault: Fault) -> Result<Self, HwError> {
        fault.kind.validate()?;
        if let FaultTarget::Leaf(leaf) = fault.target {
            match fault.kind {
                FaultKind::Dropout => return Ok(self.drop_leaf(leaf)),
                _ if self.is_dropped(leaf) => {
                    return Err(HwError::ContradictoryFault(format!(
                        "cannot add `{}` on leaf {leaf}: it is already dropped",
                        fault.kind
                    )));
                }
                _ => {}
            }
        }
        self.faults.push(fault);
        Ok(self)
    }

    /// Adds a compute slowdown on a leaf: it runs at `factor` of its
    /// nominal FLOP/s.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] unless `0 < factor <= 1`.
    pub fn slow_leaf(self, leaf: usize, factor: f64) -> Result<Self, HwError> {
        self.push(Fault {
            target: FaultTarget::Leaf(leaf),
            kind: FaultKind::ComputeSlowdown { factor },
        })
    }

    /// Adds a bandwidth degradation on a cut: its link moves bytes at
    /// `factor` of the nominal rate.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] unless `0 < factor <= 1`.
    pub fn degrade_cut(self, cut: usize, factor: f64) -> Result<Self, HwError> {
        self.push(Fault {
            target: FaultTarget::Cut(cut),
            kind: FaultKind::BandwidthDegradation { factor },
        })
    }

    /// Adds a transient stall window on a leaf: it is unavailable for
    /// `secs` at the start of every step.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] unless `secs` is non-negative
    /// and finite.
    pub fn stall_leaf(self, leaf: usize, secs: f64) -> Result<Self, HwError> {
        self.push(Fault {
            target: FaultTarget::Leaf(leaf),
            kind: FaultKind::TransientStall { secs },
        })
    }

    /// Drops a leaf entirely.
    ///
    /// Supersedes any rate/stall faults already targeting the leaf — a
    /// dead board has no remaining compute or stall behavior — and is
    /// idempotent, so `drop_leaf(i)` twice records one dropout.
    #[must_use]
    pub fn drop_leaf(mut self, leaf: usize) -> Self {
        self.faults.retain(|f| f.target != FaultTarget::Leaf(leaf));
        self.faults.push(Fault {
            target: FaultTarget::Leaf(leaf),
            kind: FaultKind::Dropout,
        });
        self
    }

    /// Revokes every fault targeting a leaf: the inverse of
    /// [`slow_leaf`](Self::slow_leaf) / [`stall_leaf`](Self::stall_leaf)
    /// / [`drop_leaf`](Self::drop_leaf) for that leaf.
    ///
    /// On a model with no prior faults on `leaf` this is an identity, so
    /// `m.slow_leaf(l, f)?.recovered(l) == m` bit-exactly — the
    /// `degrade ∘ recover == identity` invariant the live-replanning
    /// supervisor relies on to fold health-event streams.
    #[must_use]
    pub fn recovered(mut self, leaf: usize) -> Self {
        self.faults.retain(|f| f.target != FaultTarget::Leaf(leaf));
        self
    }

    /// Revokes every fault targeting a cut: the inverse of
    /// [`degrade_cut`](Self::degrade_cut) for that cut.
    ///
    /// Like [`recovered`](Self::recovered), this is an exact inverse:
    /// `m.degrade_cut(c, f)?.restore_cut(c) == m` when `m` had no prior
    /// faults on `c`.
    #[must_use]
    pub fn restore_cut(mut self, cut: usize) -> Self {
        self.faults.retain(|f| f.target != FaultTarget::Cut(cut));
        self
    }

    /// The seed this scenario was built with.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// The injected faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the model injects nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Remaining compute capability of a leaf: the product of all
    /// compute-slowdown factors targeting it (1.0 when unfaulted),
    /// clamped below at [`FACTOR_FLOOR`](Self::FACTOR_FLOOR).
    #[must_use]
    pub fn compute_factor(&self, leaf: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match (f.target, f.kind) {
                (FaultTarget::Leaf(i), FaultKind::ComputeSlowdown { factor }) if i == leaf => {
                    Some(factor)
                }
                _ => None,
            })
            .product::<f64>()
            .max(Self::FACTOR_FLOOR)
    }

    /// Remaining bandwidth capability of a cut: the product of all
    /// bandwidth-degradation factors targeting it (1.0 when unfaulted),
    /// clamped below at [`FACTOR_FLOOR`](Self::FACTOR_FLOOR).
    #[must_use]
    pub fn bandwidth_factor(&self, cut: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match (f.target, f.kind) {
                (FaultTarget::Cut(i), FaultKind::BandwidthDegradation { factor }) if i == cut => {
                    Some(factor)
                }
                _ => None,
            })
            .product::<f64>()
            .max(Self::FACTOR_FLOOR)
    }

    /// The most pessimistic multiplicative capability left anywhere in
    /// the model: the minimum over targets of their composed compute or
    /// bandwidth factor (`Some(1.0)` for an empty model). Every term a
    /// simulator charges is stretched by at most `1 / worst`, so
    /// `nominal / worst` upper-bounds any fixed plan's step time under
    /// this model. Returns `None` when the model contains a dropout or
    /// a transient stall — neither is a multiplicative slowdown, so no
    /// such bound exists.
    #[must_use]
    pub fn worst_factor(&self) -> Option<f64> {
        let mut worst = 1.0_f64;
        for fault in &self.faults {
            match (fault.target, fault.kind) {
                (_, FaultKind::Dropout | FaultKind::TransientStall { .. }) => return None,
                (FaultTarget::Leaf(i), FaultKind::ComputeSlowdown { .. }) => {
                    worst = worst.min(self.compute_factor(i));
                }
                (FaultTarget::Cut(i), FaultKind::BandwidthDegradation { .. }) => {
                    worst = worst.min(self.bandwidth_factor(i));
                }
                _ => {}
            }
        }
        Some(worst)
    }

    /// Total per-step stall window of a leaf, in seconds.
    #[must_use]
    pub fn stall_secs(&self, leaf: usize) -> f64 {
        self.faults
            .iter()
            .filter_map(|f| match (f.target, f.kind) {
                (FaultTarget::Leaf(i), FaultKind::TransientStall { secs }) if i == leaf => {
                    Some(secs)
                }
                _ => None,
            })
            .sum()
    }

    /// Whether a leaf is dropped.
    #[must_use]
    pub fn is_dropped(&self, leaf: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(
                (f.target, f.kind),
                (FaultTarget::Leaf(i), FaultKind::Dropout) if i == leaf
            )
        })
    }

    /// The dropped leaves, deduplicated, in increasing order.
    #[must_use]
    pub fn dropped_leaves(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .faults
            .iter()
            .filter_map(|f| match (f.target, f.kind) {
                (FaultTarget::Leaf(i), FaultKind::Dropout) => Some(i),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Checks every target against a tree shape.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when a leaf target is `>=
    /// n_leaves` or a cut target is `>= n_cuts`.
    pub fn validate_for(&self, n_leaves: usize, n_cuts: usize) -> Result<(), HwError> {
        for fault in &self.faults {
            match fault.target {
                FaultTarget::Leaf(i) if i >= n_leaves => {
                    return Err(HwError::InvalidFault(format!(
                        "fault targets leaf {i} but the tree has {n_leaves} leaves"
                    )));
                }
                FaultTarget::Cut(i) if i >= n_cuts => {
                    return Err(HwError::InvalidFault(format!(
                        "fault targets cut {i} but the tree has {n_cuts} cuts"
                    )));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.faults.is_empty() {
            return write!(f, "no faults (seed {})", self.seed);
        }
        write!(f, "seed {}: ", self.seed)?;
        for (i, fault) in self.faults.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fault}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_accumulate_and_validate() {
        let m = FaultModel::with_seed(7)
            .slow_leaf(0, 0.5)
            .unwrap()
            .degrade_cut(2, 0.25)
            .unwrap()
            .stall_leaf(1, 0.002)
            .unwrap()
            .drop_leaf(3);
        assert_eq!(m.seed(), 7);
        assert_eq!(m.faults().len(), 4);
        assert_eq!(m.compute_factor(0), 0.5);
        assert_eq!(m.compute_factor(1), 1.0);
        assert_eq!(m.bandwidth_factor(2), 0.25);
        assert_eq!(m.stall_secs(1), 0.002);
        assert!(m.is_dropped(3));
        assert_eq!(m.dropped_leaves(), vec![3]);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(FaultModel::new().slow_leaf(0, 0.0).is_err());
        assert!(FaultModel::new().slow_leaf(0, 1.5).is_err());
        assert!(FaultModel::new().slow_leaf(0, f64::NAN).is_err());
        assert!(FaultModel::new().degrade_cut(0, -0.1).is_err());
        assert!(FaultModel::new().stall_leaf(0, -1.0).is_err());
        assert!(FaultModel::new().stall_leaf(0, f64::INFINITY).is_err());
    }

    #[test]
    fn repeated_faults_compound() {
        let m = FaultModel::new()
            .slow_leaf(0, 0.5)
            .unwrap()
            .slow_leaf(0, 0.5)
            .unwrap()
            .stall_leaf(0, 0.001)
            .unwrap()
            .stall_leaf(0, 0.002)
            .unwrap();
        assert_eq!(m.compute_factor(0), 0.25);
        assert!((m.stall_secs(0) - 0.003).abs() < 1e-15);
    }

    #[test]
    fn compounded_factors_are_floored() {
        let mut m = FaultModel::new();
        for _ in 0..40 {
            m = m.slow_leaf(0, 0.5).unwrap().degrade_cut(1, 0.5).unwrap();
        }
        // 0.5^40 ≈ 9e-13 would underflow usefulness; the floor holds.
        assert_eq!(m.compute_factor(0), FaultModel::FACTOR_FLOOR);
        assert_eq!(m.bandwidth_factor(1), FaultModel::FACTOR_FLOOR);
        assert_eq!(m.compute_factor(1), 1.0);
    }

    #[test]
    fn rate_fault_on_dropped_leaf_is_contradictory() {
        let m = FaultModel::new().drop_leaf(2);
        assert!(matches!(
            m.clone().slow_leaf(2, 0.5),
            Err(HwError::ContradictoryFault(_))
        ));
        assert!(matches!(
            m.clone().stall_leaf(2, 0.001),
            Err(HwError::ContradictoryFault(_))
        ));
        // Other targets are unaffected.
        assert!(m.slow_leaf(1, 0.5).is_ok());
    }

    #[test]
    fn dropout_supersedes_rate_faults_and_is_idempotent() {
        let m = FaultModel::new()
            .slow_leaf(0, 0.5)
            .unwrap()
            .stall_leaf(0, 0.002)
            .unwrap()
            .drop_leaf(0)
            .drop_leaf(0);
        assert_eq!(m.faults().len(), 1);
        assert!(m.is_dropped(0));
        assert_eq!(m.compute_factor(0), 1.0);
        assert_eq!(m.stall_secs(0), 0.0);
        // push(Dropout) routes through the same supersede path.
        let via_push = FaultModel::new()
            .slow_leaf(0, 0.5)
            .unwrap()
            .push(Fault {
                target: FaultTarget::Leaf(0),
                kind: FaultKind::Dropout,
            })
            .unwrap();
        assert_eq!(via_push.faults().len(), 1);
    }

    #[test]
    fn recover_inverts_degrade_bit_exactly() {
        let base = FaultModel::with_seed(11)
            .slow_leaf(1, 0.7)
            .unwrap()
            .degrade_cut(2, 0.4)
            .unwrap();
        // Leaf round-trips: slowdown, stall, dropout.
        assert_eq!(base.clone().slow_leaf(3, 0.5).unwrap().recovered(3), base);
        assert_eq!(base.clone().stall_leaf(3, 0.01).unwrap().recovered(3), base);
        assert_eq!(base.clone().drop_leaf(3).recovered(3), base);
        // Cut round-trip.
        assert_eq!(base.clone().degrade_cut(0, 0.9).unwrap().restore_cut(0), base);
        // Recovery on an unfaulted target is an identity.
        assert_eq!(base.clone().recovered(6), base);
        assert_eq!(base.clone().restore_cut(6), base);
    }

    #[test]
    fn worst_factor_bounds_multiplicative_models_only() {
        assert_eq!(FaultModel::new().worst_factor(), Some(1.0));
        let faults = FaultModel::new()
            .slow_leaf(0, 0.5)
            .unwrap()
            .degrade_cut(1, 0.25)
            .unwrap();
        assert_eq!(faults.worst_factor(), Some(0.25));
        // Compounded factors on one target compose before the min.
        let compounded = FaultModel::new()
            .slow_leaf(0, 0.5)
            .unwrap()
            .slow_leaf(0, 0.4)
            .unwrap();
        assert_eq!(compounded.worst_factor(), Some(0.2));
        // Dropouts and stalls are not multiplicative: no bound.
        assert_eq!(FaultModel::new().drop_leaf(0).worst_factor(), None);
        assert_eq!(
            FaultModel::new().stall_leaf(0, 0.1).unwrap().worst_factor(),
            None
        );
    }

    #[test]
    fn random_scenarios_are_reproducible() {
        let a = FaultModel::random(99, 8, 7, 5).unwrap();
        let b = FaultModel::random(99, 8, 7, 5).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 5);
        let c = FaultModel::random(100, 8, 7, 5).unwrap();
        assert_ne!(a, c);
        // All sampled targets are in range and never dropout.
        assert!(a.validate_for(8, 7).is_ok());
        assert!(a.dropped_leaves().is_empty());
    }

    #[test]
    fn random_with_no_cuts_only_targets_leaves() {
        let m = FaultModel::random(5, 4, 0, 6).unwrap();
        assert!(m.validate_for(4, 0).is_ok());
        assert!(FaultModel::random(5, 0, 0, 1).is_err());
    }

    #[test]
    fn validate_for_checks_ranges() {
        let m = FaultModel::new().slow_leaf(4, 0.5).unwrap();
        assert!(m.validate_for(4, 3).is_err());
        assert!(m.validate_for(5, 0).is_ok());
        let m = FaultModel::new().degrade_cut(3, 0.5).unwrap();
        assert!(m.validate_for(8, 3).is_err());
        assert!(m.validate_for(8, 4).is_ok());
    }

    #[test]
    fn display_summarizes() {
        let m = FaultModel::with_seed(3).slow_leaf(1, 0.5).unwrap();
        let text = m.to_string();
        assert!(text.contains("seed 3"));
        assert!(text.contains("leaf 1"));
        assert!(text.contains("0.50x"));
        assert!(FaultModel::new().to_string().contains("no faults"));
    }
}
