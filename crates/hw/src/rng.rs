//! Small deterministic PRNG for seeded fault scenarios.
//!
//! The workspace builds fully offline, so instead of an external random
//! crate the fault-injection subsystem carries this splitmix64-based
//! generator. It is *not* cryptographic — it exists purely so that every
//! randomly generated fault scenario is reproducible from its seed, in
//! tests and in the robustness ablation harness.

/// A seeded splitmix64 generator — the explicit-seed stand-in for a
/// standard random source.
///
/// # Example
///
/// ```
/// use accpar_hw::rng::StdRng;
///
/// let mut a = StdRng::seed_from_u64(7);
/// let mut b = StdRng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    /// Creates a generator from an explicit 64-bit seed.
    #[must_use]
    pub const fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next 64 random bits (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform float in `[lo, hi)`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.gen_unit() * (hi - lo)
    }

    /// A uniform integer in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let u = rng.gen_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(2, 7);
            assert!((2..7).contains(&v));
            seen[v - 2] = true;
            let f = rng.gen_range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&f));
        }
        // The stream covers the whole small range.
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(0).gen_range(3, 3);
    }
}
