//! Hardware health events: a timeline of degradations and recoveries.
//!
//! A [`FaultModel`](crate::FaultModel) is a *snapshot* of fleet health;
//! a [`HealthSchedule`] is a *timeline*. Each [`HealthEvent`] names a
//! target (leaf or cut, in the same index spaces faults use) and what
//! happened to it at a point in schedule time:
//!
//! * [`Degrade`](HealthEventKind::Degrade) — a leaf now computes at
//!   `factor` of nominal (thermal throttle, shared-host straggler);
//! * [`Fail`](HealthEventKind::Fail) — a leaf is gone (board death,
//!   preemption) and plans touching it cannot run;
//! * [`Recover`](HealthEventKind::Recover) — a leaf is back at full
//!   health, revoking whatever Degrade/Fail state it carried;
//! * [`BandwidthJitter`](HealthEventKind::BandwidthJitter) — the link at
//!   one cut moves bytes at `factor` of nominal; `factor == 1` restores
//!   the link.
//!
//! Events fold into a running fault model with **set semantics**: each
//! event first revokes the target's previous state, then applies the
//! new one. The running model therefore carries at most one fault per
//! target and is a pure function of the *latest* event per target —
//! which is what makes a supervisor's terminal state comparable
//! bit-for-bit against planning from scratch on the terminal fault set.
//!
//! # Example
//!
//! ```
//! use accpar_hw::{FaultModel, HealthEventKind, HealthSchedule};
//!
//! let schedule = HealthSchedule::with_seed(7)
//!     .push(0.0, HealthEventKind::Degrade { leaf: 1, factor: 0.5 })?
//!     .push(0.4, HealthEventKind::Fail { leaf: 0 })?
//!     .push(1.2, HealthEventKind::Recover { leaf: 1 })?;
//! let terminal = schedule.fold_all(FaultModel::new())?;
//! assert_eq!(terminal.compute_factor(1), 1.0); // leaf 1 recovered
//! assert!(terminal.is_dropped(0)); // leaf 0 still down
//! # Ok::<(), accpar_hw::HwError>(())
//! ```

use crate::error::HwError;
use crate::fault::FaultModel;
use crate::rng::StdRng;
use std::fmt;

/// What happened to a target at one point in the health timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum HealthEventKind {
    /// A leaf now computes at `factor` of its nominal FLOP/s
    /// (`0 < factor <= 1`), replacing any previous degradation on it.
    Degrade {
        /// The leaf, counted left to right.
        leaf: usize,
        /// Remaining compute capability.
        factor: f64,
    },
    /// A leaf is gone entirely, superseding any degradation on it.
    Fail {
        /// The leaf, counted left to right.
        leaf: usize,
    },
    /// A leaf is back at full health, revoking prior Degrade/Fail state.
    Recover {
        /// The leaf, counted left to right.
        leaf: usize,
    },
    /// The link at a cut moves bytes at `factor` of its nominal rate
    /// (`0 < factor <= 1`); `factor == 1` restores the link.
    BandwidthJitter {
        /// The cut, counted in pre-order.
        cut: usize,
        /// Remaining bandwidth capability.
        factor: f64,
    },
}

impl HealthEventKind {
    /// Stable label for logs and trace events.
    #[must_use]
    pub const fn label(&self) -> &'static str {
        match self {
            HealthEventKind::Degrade { .. } => "degrade",
            HealthEventKind::Fail { .. } => "fail",
            HealthEventKind::Recover { .. } => "recover",
            HealthEventKind::BandwidthJitter { .. } => "bandwidth-jitter",
        }
    }

    /// The leaf or cut index the event targets.
    #[must_use]
    pub const fn target(&self) -> usize {
        match *self {
            HealthEventKind::Degrade { leaf, .. }
            | HealthEventKind::Fail { leaf }
            | HealthEventKind::Recover { leaf } => leaf,
            HealthEventKind::BandwidthJitter { cut, .. } => cut,
        }
    }

    /// Whether the event can only improve the target's health
    /// (a `Recover`, or a jitter back to full rate).
    #[must_use]
    pub fn is_recovery(&self) -> bool {
        match *self {
            HealthEventKind::Recover { .. } => true,
            HealthEventKind::BandwidthJitter { factor, .. } => factor >= 1.0,
            _ => false,
        }
    }

    /// Validates the event's parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when a factor is outside
    /// `(0, 1]`.
    pub fn validate(&self) -> Result<(), HwError> {
        match *self {
            HealthEventKind::Degrade { factor, .. }
            | HealthEventKind::BandwidthJitter { factor, .. } => {
                if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
                    return Err(HwError::InvalidFault(format!(
                        "health factor must be in (0, 1], got {factor}"
                    )));
                }
                Ok(())
            }
            HealthEventKind::Fail { .. } | HealthEventKind::Recover { .. } => Ok(()),
        }
    }

    /// Folds this event into a running fault model with set semantics:
    /// the target's previous state is revoked first, then the new state
    /// applied, so the model carries at most one fault per target.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when the event carries an
    /// out-of-range factor.
    pub fn fold_into(&self, faults: FaultModel) -> Result<FaultModel, HwError> {
        self.validate()?;
        match *self {
            HealthEventKind::Degrade { leaf, factor } => {
                faults.recovered(leaf).slow_leaf(leaf, factor)
            }
            HealthEventKind::Fail { leaf } => Ok(faults.recovered(leaf).drop_leaf(leaf)),
            HealthEventKind::Recover { leaf } => Ok(faults.recovered(leaf)),
            HealthEventKind::BandwidthJitter { cut, factor } => {
                let restored = faults.restore_cut(cut);
                if factor >= 1.0 {
                    Ok(restored)
                } else {
                    restored.degrade_cut(cut, factor)
                }
            }
        }
    }
}

impl fmt::Display for HealthEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthEventKind::Degrade { leaf, factor } => {
                write!(f, "degrade leaf {leaf} to {factor:.2}x")
            }
            HealthEventKind::Fail { leaf } => write!(f, "fail leaf {leaf}"),
            HealthEventKind::Recover { leaf } => write!(f, "recover leaf {leaf}"),
            HealthEventKind::BandwidthJitter { cut, factor } => {
                write!(f, "jitter cut {cut} to {factor:.2}x")
            }
        }
    }
}

/// One timestamped health event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthEvent {
    /// Schedule time the event lands at, in arbitrary (but consistent)
    /// time units. Events in a schedule are non-decreasing in `at`.
    pub at: f64,
    /// What happened.
    pub kind: HealthEventKind,
}

impl fmt::Display for HealthEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}: {}", self.at, self.kind)
    }
}

/// A deterministic, seeded timeline of health events.
///
/// Build explicitly with [`push`](Self::push) or sample with
/// [`random`](Self::random); both keep events ordered by time. The seed
/// is carried so a scenario can always be reported and regenerated.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HealthSchedule {
    seed: u64,
    events: Vec<HealthEvent>,
}

impl HealthSchedule {
    /// An empty schedule (seed 0).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty schedule carrying an explicit seed.
    #[must_use]
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends a validated event at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when the kind carries an
    /// out-of-range factor, `at` is non-finite or negative, or `at`
    /// precedes the last event already in the schedule.
    pub fn push(mut self, at: f64, kind: HealthEventKind) -> Result<Self, HwError> {
        kind.validate()?;
        if !at.is_finite() || at < 0.0 {
            return Err(HwError::InvalidFault(format!(
                "event time must be non-negative and finite, got {at}"
            )));
        }
        if let Some(last) = self.events.last() {
            if at < last.at {
                return Err(HwError::InvalidFault(format!(
                    "event at t={at} precedes the schedule's last event at t={}",
                    last.at
                )));
            }
        }
        self.events.push(HealthEvent { at, kind });
        Ok(self)
    }

    /// Samples `n_events` events over `n_leaves` leaves and `n_cuts`
    /// cuts, fully determined by `seed`.
    ///
    /// The generator mixes degradations, failures, recoveries, and
    /// bandwidth jitter, tracking which targets are currently unhealthy
    /// so recoveries land on targets that actually have state to revoke.
    /// Inter-event gaps alternate between bursts (many events close
    /// together, exercising a supervisor's debouncing) and quiet spells.
    /// A `Fail` is never emitted when it would leave fewer than two
    /// healthy leaves, so every prefix of a random schedule keeps a
    /// servable array.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when `n_leaves < 2` (the
    /// generator could not honor its fail-floor invariant).
    pub fn random(
        seed: u64,
        n_leaves: usize,
        n_cuts: usize,
        n_events: usize,
    ) -> Result<Self, HwError> {
        if n_leaves < 2 {
            return Err(HwError::InvalidFault(
                "health schedules need at least two leaves".into(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut schedule = Self::with_seed(seed);
        let mut degraded = vec![false; n_leaves];
        let mut failed = vec![false; n_leaves];
        let mut jittered = vec![false; n_cuts];
        let mut at = 0.0_f64;
        for _ in 0..n_events {
            // Burst ~40% of the time: tiny gaps that should debounce
            // into one supervisor decision.
            at += if rng.gen_unit() < 0.4 {
                rng.gen_range_f64(1e-3, 1e-2)
            } else {
                rng.gen_range_f64(0.2, 2.0)
            };
            let healthy = failed.iter().filter(|&&f| !f).count();
            let unhealthy_leaves: Vec<usize> = (0..n_leaves)
                .filter(|&l| degraded[l] || failed[l])
                .collect();
            let jittered_cuts: Vec<usize> =
                (0..n_cuts).filter(|&c| jittered[c]).collect();
            let roll = rng.gen_range(0, 100);
            let kind = if roll < 35 {
                let leaf = rng.gen_range(0, n_leaves);
                if failed[leaf] {
                    // A failed leaf cannot throttle; bring it back.
                    failed[leaf] = false;
                    HealthEventKind::Recover { leaf }
                } else {
                    degraded[leaf] = true;
                    HealthEventKind::Degrade {
                        leaf,
                        factor: rng.gen_range_f64(0.3, 0.95),
                    }
                }
            } else if roll < 50 && n_cuts > 0 {
                let cut = rng.gen_range(0, n_cuts);
                jittered[cut] = true;
                HealthEventKind::BandwidthJitter {
                    cut,
                    factor: rng.gen_range_f64(0.2, 0.95),
                }
            } else if roll < 80 && !(unhealthy_leaves.is_empty() && jittered_cuts.is_empty()) {
                // Recovery: prefer leaves, fall back to restoring a cut.
                if unhealthy_leaves.is_empty() {
                    let cut = jittered_cuts[rng.gen_range(0, jittered_cuts.len())];
                    jittered[cut] = false;
                    HealthEventKind::BandwidthJitter { cut, factor: 1.0 }
                } else {
                    let leaf = unhealthy_leaves[rng.gen_range(0, unhealthy_leaves.len())];
                    degraded[leaf] = false;
                    failed[leaf] = false;
                    HealthEventKind::Recover { leaf }
                }
            } else if healthy > 2 {
                // Fail only while at least two healthy leaves remain.
                let live: Vec<usize> = (0..n_leaves).filter(|&l| !failed[l]).collect();
                let leaf = live[rng.gen_range(0, live.len())];
                failed[leaf] = true;
                degraded[leaf] = false;
                HealthEventKind::Fail { leaf }
            } else {
                let leaf = rng.gen_range(0, n_leaves);
                if failed[leaf] {
                    failed[leaf] = false;
                    HealthEventKind::Recover { leaf }
                } else {
                    degraded[leaf] = true;
                    HealthEventKind::Degrade {
                        leaf,
                        factor: rng.gen_range_f64(0.3, 0.95),
                    }
                }
            };
            schedule = schedule.push(at, kind)?;
        }
        Ok(schedule)
    }

    /// The seed this schedule was built with.
    #[must_use]
    pub const fn seed(&self) -> u64 {
        self.seed
    }

    /// The events, in time order.
    #[must_use]
    pub fn events(&self) -> &[HealthEvent] {
        &self.events
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule has no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Folds every event into `base` in time order, returning the
    /// terminal fault model. With set semantics, the result depends only
    /// on each target's latest event.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when any event carries an
    /// out-of-range factor.
    pub fn fold_all(&self, base: FaultModel) -> Result<FaultModel, HwError> {
        self.events
            .iter()
            .try_fold(base, |model, event| event.kind.fold_into(model))
    }

    /// Checks every event's target against a tree shape.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when a leaf target is `>=
    /// n_leaves` or a cut target is `>= n_cuts`.
    pub fn validate_for(&self, n_leaves: usize, n_cuts: usize) -> Result<(), HwError> {
        for event in &self.events {
            let target = event.kind.target();
            let (bound, what) = match event.kind {
                HealthEventKind::BandwidthJitter { .. } => (n_cuts, "cuts"),
                _ => (n_leaves, "leaves"),
            };
            if target >= bound {
                return Err(HwError::InvalidFault(format!(
                    "health event `{}` targets index {target} but the tree has {bound} {what}",
                    event.kind.label()
                )));
            }
        }
        Ok(())
    }
}

impl fmt::Display for HealthSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} health events (seed {})",
            self.events.len(),
            self.seed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_orders_and_validates() {
        let s = HealthSchedule::with_seed(3)
            .push(0.0, HealthEventKind::Degrade { leaf: 0, factor: 0.5 })
            .unwrap()
            .push(0.5, HealthEventKind::Recover { leaf: 0 })
            .unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.seed(), 3);
        assert!(s
            .clone()
            .push(0.1, HealthEventKind::Fail { leaf: 1 })
            .is_err());
        assert!(s
            .clone()
            .push(f64::NAN, HealthEventKind::Fail { leaf: 1 })
            .is_err());
        assert!(s
            .push(1.0, HealthEventKind::Degrade { leaf: 0, factor: 0.0 })
            .is_err());
    }

    #[test]
    fn fold_keeps_one_fault_per_target() {
        let model = HealthSchedule::new()
            .push(0.0, HealthEventKind::Degrade { leaf: 0, factor: 0.9 })
            .unwrap()
            .push(0.1, HealthEventKind::Degrade { leaf: 0, factor: 0.4 })
            .unwrap()
            .push(0.2, HealthEventKind::BandwidthJitter { cut: 1, factor: 0.5 })
            .unwrap()
            .push(0.3, HealthEventKind::BandwidthJitter { cut: 1, factor: 0.8 })
            .unwrap()
            .fold_all(FaultModel::new())
            .unwrap();
        // Latest event wins: factors replace, never compound.
        assert_eq!(model.compute_factor(0), 0.4);
        assert_eq!(model.bandwidth_factor(1), 0.8);
        assert_eq!(model.faults().len(), 2);
    }

    #[test]
    fn fold_recover_is_exact_inverse() {
        let base = FaultModel::new().slow_leaf(2, 0.6).unwrap();
        let kind = HealthEventKind::Degrade { leaf: 0, factor: 0.5 };
        let degraded = kind.fold_into(base.clone()).unwrap();
        let recovered = HealthEventKind::Recover { leaf: 0 }
            .fold_into(degraded)
            .unwrap();
        assert_eq!(recovered, base);
        // Fail then recover also round-trips.
        let failed = HealthEventKind::Fail { leaf: 0 }.fold_into(base.clone()).unwrap();
        assert!(failed.is_dropped(0));
        let back = HealthEventKind::Recover { leaf: 0 }.fold_into(failed).unwrap();
        assert_eq!(back, base);
        // Jitter at full rate restores the cut.
        let jittered = HealthEventKind::BandwidthJitter { cut: 3, factor: 0.5 }
            .fold_into(base.clone())
            .unwrap();
        let restored = HealthEventKind::BandwidthJitter { cut: 3, factor: 1.0 }
            .fold_into(jittered)
            .unwrap();
        assert_eq!(restored, base);
    }

    #[test]
    fn degrade_after_fail_replaces_dropout() {
        // A Degrade on a failed leaf revokes the dropout first — no
        // ContradictoryFault surfaces from folding a legal stream.
        let failed = HealthEventKind::Fail { leaf: 1 }
            .fold_into(FaultModel::new())
            .unwrap();
        let throttled = HealthEventKind::Degrade { leaf: 1, factor: 0.5 }
            .fold_into(failed)
            .unwrap();
        assert!(!throttled.is_dropped(1));
        assert_eq!(throttled.compute_factor(1), 0.5);
    }

    #[test]
    fn random_schedules_are_reproducible_and_in_range() {
        let a = HealthSchedule::random(42, 8, 7, 50).unwrap();
        let b = HealthSchedule::random(42, 8, 7, 50).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert_ne!(a, HealthSchedule::random(43, 8, 7, 50).unwrap());
        assert!(a.validate_for(8, 7).is_ok());
        // Times are non-decreasing.
        for pair in a.events().windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        assert!(HealthSchedule::random(1, 1, 0, 3).is_err());
    }

    #[test]
    fn random_schedules_never_fail_below_two_leaves() {
        for seed in 0..20 {
            let s = HealthSchedule::random(seed, 4, 3, 120).unwrap();
            let mut model = FaultModel::new();
            for event in s.events() {
                model = event.kind.fold_into(model).unwrap();
                assert!(
                    4 - model.dropped_leaves().len() >= 2,
                    "seed {seed} dropped below two healthy leaves"
                );
            }
        }
    }

    #[test]
    fn fold_all_matches_manual_fold() {
        let s = HealthSchedule::random(9, 6, 5, 40).unwrap();
        let mut manual = FaultModel::new();
        for event in s.events() {
            manual = event.kind.fold_into(manual).unwrap();
        }
        assert_eq!(s.fold_all(FaultModel::new()).unwrap(), manual);
    }

    #[test]
    fn labels_and_display() {
        let kind = HealthEventKind::Degrade { leaf: 2, factor: 0.5 };
        assert_eq!(kind.label(), "degrade");
        assert_eq!(kind.target(), 2);
        assert!(!kind.is_recovery());
        assert!(HealthEventKind::Recover { leaf: 0 }.is_recovery());
        assert!(HealthEventKind::BandwidthJitter { cut: 0, factor: 1.0 }.is_recovery());
        let event = HealthEvent { at: 1.5, kind };
        assert!(event.to_string().contains("t=1.500"));
        assert!(HealthSchedule::new().to_string().contains("0 health events"));
    }
}
