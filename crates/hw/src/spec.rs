use crate::error::HwError;
use std::fmt;

const GB: f64 = 1e9;
const GIB: u64 = 1 << 30;

/// Specification of one accelerator board, after Table 7 of the paper.
///
/// Rates are in base SI units: FLOP/s for compute and bytes/s for
/// bandwidths. The network rates follow the paper's settings (8 Gb/s for
/// TPU-v2 boards, 16 Gb/s for TPU-v3 boards); `ici_bw` is the *per-board*
/// intra-board interconnect bandwidth, which only matters when a
/// hierarchical partition is deep enough to split the cores of a single
/// board (hierarchy levels beyond `log2(#boards)`).
///
/// # Example
///
/// ```
/// use accpar_hw::AcceleratorSpec;
///
/// let v3 = AcceleratorSpec::tpu_v3();
/// assert_eq!(v3.peak_flops(), 420e12);
/// assert_eq!(v3.cores(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorSpec {
    name: String,
    peak_flops: f64,
    hbm_bytes: u64,
    mem_bw: f64,
    net_bw: f64,
    cores: usize,
    ici_bw: f64,
}

impl AcceleratorSpec {
    /// Creates a custom accelerator specification.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidSpec`] if any rate is non-positive or
    /// non-finite, or `cores` is zero.
    pub fn new(
        name: impl Into<String>,
        peak_flops: f64,
        hbm_bytes: u64,
        mem_bw: f64,
        net_bw: f64,
        cores: usize,
        ici_bw: f64,
    ) -> Result<Self, HwError> {
        let check = |v: f64, what: &str| -> Result<(), HwError> {
            if !v.is_finite() || v <= 0.0 {
                return Err(HwError::InvalidSpec(format!("{what} must be positive, got {v}")));
            }
            Ok(())
        };
        check(peak_flops, "peak_flops")?;
        check(mem_bw, "mem_bw")?;
        check(net_bw, "net_bw")?;
        check(ici_bw, "ici_bw")?;
        if cores == 0 {
            return Err(HwError::InvalidSpec("cores must be positive".into()));
        }
        Ok(Self {
            name: name.into(),
            peak_flops,
            hbm_bytes,
            mem_bw,
            net_bw,
            cores,
            ici_bw,
        })
    }

    /// The TPU-v2 board of Table 7: 180 TFLOPS, 64 GB HBM at 2400 GB/s,
    /// 8 Gb/s network, 4 chips × 2 cores.
    #[must_use]
    pub fn tpu_v2() -> Self {
        Self::new(
            "tpu-v2",
            180e12,
            64 * GIB,
            2400.0 * GB,
            1.0 * GB, // 8 Gb/s
            8,
            100.0 * GB,
        )
        .expect("preset is valid")
    }

    /// The TPU-v3 board of Table 7: 420 TFLOPS, 128 GB HBM at 4800 GB/s,
    /// 16 Gb/s network, 4 chips × 2 cores.
    #[must_use]
    pub fn tpu_v3() -> Self {
        Self::new(
            "tpu-v3",
            420e12,
            128 * GIB,
            4800.0 * GB,
            2.0 * GB, // 16 Gb/s
            8,
            200.0 * GB,
        )
        .expect("preset is valid")
    }

    /// Display name of the board type.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Peak compute throughput (FLOP/s) — the paper's computation density
    /// `c_i`.
    #[must_use]
    pub const fn peak_flops(&self) -> f64 {
        self.peak_flops
    }

    /// HBM capacity in bytes.
    #[must_use]
    pub const fn hbm_bytes(&self) -> u64 {
        self.hbm_bytes
    }

    /// HBM bandwidth in bytes/s.
    #[must_use]
    pub const fn mem_bw(&self) -> f64 {
        self.mem_bw
    }

    /// External network bandwidth in bytes/s — the paper's `b_i`.
    #[must_use]
    pub const fn net_bw(&self) -> f64 {
        self.net_bw
    }

    /// Number of cores on the board (Table 7: 4 chips × 2 cores).
    #[must_use]
    pub const fn cores(&self) -> usize {
        self.cores
    }

    /// Aggregate intra-board interconnect bandwidth in bytes/s.
    #[must_use]
    pub const fn ici_bw(&self) -> f64 {
        self.ici_bw
    }

    /// This board's specification under a fault: a compute slowdown
    /// scales `peak_flops`, a bandwidth degradation scales `net_bw` and
    /// `ici_bw`. Transient stalls and dropout do not change rates (they
    /// are temporal/topological — the simulator and planner handle
    /// them), so the spec is returned unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when the kind's parameters are
    /// out of range (see [`crate::FaultKind::validate`]).
    pub fn degraded(&self, kind: &crate::FaultKind) -> Result<Self, HwError> {
        kind.validate()?;
        let mut spec = self.clone();
        match *kind {
            crate::FaultKind::ComputeSlowdown { factor } => spec.peak_flops *= factor,
            crate::FaultKind::BandwidthDegradation { factor } => {
                spec.net_bw *= factor;
                spec.ici_bw *= factor;
            }
            crate::FaultKind::TransientStall { .. } | crate::FaultKind::Dropout => {}
        }
        Ok(spec)
    }
}

impl fmt::Display for AcceleratorSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.0} TFLOPS, {} GB HBM @ {:.0} GB/s, net {:.1} GB/s, {} cores",
            self.name,
            self.peak_flops / 1e12,
            self.hbm_bytes / GIB,
            self.mem_bw / GB,
            self.net_bw / GB,
            self.cores
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_7_values() {
        let v2 = AcceleratorSpec::tpu_v2();
        assert_eq!(v2.peak_flops(), 180e12);
        assert_eq!(v2.hbm_bytes(), 64 * (1 << 30));
        assert_eq!(v2.mem_bw(), 2400e9);
        assert_eq!(v2.net_bw(), 1e9);
        assert_eq!(v2.cores(), 8);

        let v3 = AcceleratorSpec::tpu_v3();
        assert_eq!(v3.peak_flops(), 420e12);
        assert_eq!(v3.hbm_bytes(), 128 * (1 << 30));
        assert_eq!(v3.mem_bw(), 4800e9);
        assert_eq!(v3.net_bw(), 2e9);
    }

    #[test]
    fn v3_doubles_v2_bandwidths() {
        let v2 = AcceleratorSpec::tpu_v2();
        let v3 = AcceleratorSpec::tpu_v3();
        assert_eq!(v3.mem_bw(), 2.0 * v2.mem_bw());
        assert_eq!(v3.net_bw(), 2.0 * v2.net_bw());
        assert!((v3.peak_flops() / v2.peak_flops() - 7.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(AcceleratorSpec::new("x", 0.0, 1, 1.0, 1.0, 1, 1.0).is_err());
        assert!(AcceleratorSpec::new("x", 1.0, 1, -1.0, 1.0, 1, 1.0).is_err());
        assert!(AcceleratorSpec::new("x", 1.0, 1, 1.0, f64::NAN, 1, 1.0).is_err());
        assert!(AcceleratorSpec::new("x", 1.0, 1, 1.0, 1.0, 0, 1.0).is_err());
    }

    #[test]
    fn display_mentions_name() {
        assert!(AcceleratorSpec::tpu_v2().to_string().contains("tpu-v2"));
    }
}
