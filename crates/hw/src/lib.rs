//! Hardware models for the AccPar reproduction.
//!
//! The paper evaluates on an array of 128 TPU-v2 and 128 TPU-v3 boards
//! (Table 7) and partitions tensors *hierarchically*: the array is
//! recursively bisected into pairs of accelerator groups, and AccPar's
//! layer-wise search runs once per bisection level (§5.1, Figure 8).
//!
//! * [`AcceleratorSpec`] — one accelerator board: peak FLOPS, HBM
//!   capacity, memory bandwidth, external network bandwidth, and core
//!   count with intra-board interconnect bandwidth (used only when a
//!   hierarchy is deep enough to split inside a board);
//! * [`AcceleratorArray`] — an ordered collection of boards, with
//!   heterogeneous and homogeneous TPU presets;
//! * [`GroupTree`] / [`GroupNode`] — the recursive bisection, with
//!   aggregate [`GroupCaps`] per node and per-child cut bandwidths;
//! * [`FaultModel`] — deterministic, seeded fault injection (straggler
//!   slowdowns, degraded cut links, transient stalls, device dropout),
//!   folded into a degraded tree via [`GroupTree::degraded`] and
//!   [`GroupTree::without_leaf`]; faults are revocable via
//!   [`FaultModel::recovered`] / [`FaultModel::restore_cut`];
//! * [`HealthSchedule`] / [`HealthEvent`] — a seeded timeline of
//!   degradations, failures, and recoveries that folds into a running
//!   `FaultModel` with set semantics (latest event per target wins).
//!
//! # Example
//!
//! ```
//! use accpar_hw::{AcceleratorArray, GroupTree};
//!
//! // The paper's heterogeneous array: 128 TPU-v2 + 128 TPU-v3.
//! let array = AcceleratorArray::heterogeneous_tpu(128, 128);
//! let tree = GroupTree::bisect(&array, 3)?;
//!
//! // The first cut separates the v2 half from the v3 half, so the two
//! // children have unequal compute capability.
//! let (left, right) = tree.root().children().unwrap();
//! assert!(left.caps().flops != right.caps().flops);
//! # Ok::<(), accpar_hw::HwError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array;
mod error;
mod fault;
mod group;
mod health;
pub mod rng;
mod spec;

pub use array::AcceleratorArray;
pub use error::HwError;
pub use fault::{Fault, FaultKind, FaultModel, FaultTarget};
pub use group::{Group, GroupCaps, GroupNode, GroupTree, Share};
pub use health::{HealthEvent, HealthEventKind, HealthSchedule};
pub use spec::AcceleratorSpec;
