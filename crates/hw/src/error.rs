use std::fmt;

/// Errors produced while constructing arrays or group trees.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum HwError {
    /// An array must contain at least one accelerator.
    EmptyArray,
    /// The requested hierarchy is deeper than the array can be bisected,
    /// even after splitting boards into cores.
    TooDeep {
        /// Levels requested.
        requested: usize,
        /// Maximum supported by this array.
        max: usize,
    },
    /// An accelerator specification contained a non-positive rate.
    InvalidSpec(String),
    /// A fault was malformed or targeted a leaf/cut the tree does not
    /// have.
    InvalidFault(String),
    /// Two faults in the same model contradict each other, e.g. a rate
    /// fault on a leaf that an earlier entry already dropped.
    ContradictoryFault(String),
}

impl fmt::Display for HwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HwError::EmptyArray => write!(f, "accelerator array is empty"),
            HwError::TooDeep { requested, max } => write!(
                f,
                "hierarchy of {requested} levels exceeds the array's maximum of {max}"
            ),
            HwError::InvalidSpec(msg) => write!(f, "invalid accelerator spec: {msg}"),
            HwError::InvalidFault(msg) => write!(f, "invalid fault: {msg}"),
            HwError::ContradictoryFault(msg) => write!(f, "contradictory fault: {msg}"),
        }
    }
}

impl std::error::Error for HwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HwError>();
    }

    #[test]
    fn display_messages() {
        assert!(HwError::TooDeep { requested: 12, max: 11 }
            .to_string()
            .contains("12"));
    }
}
