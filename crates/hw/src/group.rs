use crate::array::AcceleratorArray;
use crate::error::HwError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A share of one board: `cores` of the board's cores (all of them for a
/// whole-board share).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Share {
    /// Index of the board in the array.
    pub board: usize,
    /// Number of cores of that board in this group.
    pub cores: usize,
}

/// A set of (possibly partial) boards acting as one side of a bisection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Group {
    shares: Vec<Share>,
}

impl Group {
    /// The shares making up this group.
    #[must_use]
    pub fn shares(&self) -> &[Share] {
        &self.shares
    }

    /// Total number of cores in the group.
    #[must_use]
    pub fn total_cores(&self) -> usize {
        self.shares.iter().map(|s| s.cores).sum()
    }

    /// Whether the group consists only of whole boards.
    #[must_use]
    pub fn is_whole_boards(&self, array: &AcceleratorArray) -> bool {
        self.shares
            .iter()
            .all(|s| s.cores == array.boards()[s.board].cores())
    }
}

/// Aggregate capabilities of a group — the quantities the cost model
/// consumes: computation density `c_i` (FLOP/s), memory bandwidth
/// (bytes/s), external network bandwidth `b_i` (bytes/s) and HBM capacity
/// (bytes). Partial boards contribute proportionally to their core share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupCaps {
    /// Aggregate peak compute, FLOP/s.
    pub flops: f64,
    /// Aggregate HBM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Aggregate external network bandwidth, bytes/s.
    pub net_bw: f64,
    /// Aggregate HBM capacity, bytes.
    pub hbm_bytes: f64,
}

impl GroupCaps {
    fn zero() -> Self {
        Self {
            flops: 0.0,
            mem_bw: 0.0,
            net_bw: 0.0,
            hbm_bytes: 0.0,
        }
    }

    fn of(group: &Group, array: &AcceleratorArray) -> Self {
        let mut caps = Self::zero();
        for share in group.shares() {
            let spec = &array.boards()[share.board];
            let frac = share.cores as f64 / spec.cores() as f64;
            caps.flops += spec.peak_flops() * frac;
            caps.mem_bw += spec.mem_bw() * frac;
            caps.net_bw += spec.net_bw() * frac;
            caps.hbm_bytes += spec.hbm_bytes() as f64 * frac;
        }
        caps
    }
}

/// One node of the recursive bisection: a group, its aggregate caps, the
/// bandwidth it uses to reach its *sibling*, and (unless it is a leaf) two
/// children.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupNode {
    group: Group,
    caps: GroupCaps,
    link_bw: f64,
    children: Option<Box<(GroupNode, GroupNode)>>,
}

impl GroupNode {
    /// The accelerators in this node.
    #[must_use]
    pub const fn group(&self) -> &Group {
        &self.group
    }

    /// Aggregate capabilities of this node.
    #[must_use]
    pub const fn caps(&self) -> GroupCaps {
        self.caps
    }

    /// Bandwidth (bytes/s) this node uses to access its sibling's memory:
    /// its aggregate external network bandwidth across the cut, or a share
    /// of the intra-board interconnect when the cut runs through a board.
    /// For the root this is the array's aggregate external bandwidth.
    #[must_use]
    pub const fn link_bw(&self) -> f64 {
        self.link_bw
    }

    /// The two children produced by bisection, if this is not a leaf.
    #[must_use]
    pub fn children(&self) -> Option<(&GroupNode, &GroupNode)> {
        self.children.as_deref().map(|c| (&c.0, &c.1))
    }

    /// Whether this node is a leaf of the tree.
    #[must_use]
    pub const fn is_leaf(&self) -> bool {
        self.children.is_none()
    }

    /// Depth of the subtree below (and including) this node.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self.children() {
            None => 0,
            Some((l, r)) => 1 + l.depth().max(r.depth()),
        }
    }

    /// Iterates over the leaves of this subtree, left to right.
    pub fn leaves(&self) -> Box<dyn Iterator<Item = &GroupNode> + '_> {
        match self.children() {
            None => Box::new(std::iter::once(self)),
            Some((l, r)) => Box::new(l.leaves().chain(r.leaves())),
        }
    }
}

/// The hierarchical bisection of an array into `levels` levels of group
/// pairs (§5.1: "apply the layer-wise partitioning recursively on a
/// partitioned hierarchy").
///
/// Bisection is *type-aware*: when a node contains exactly two runs of
/// distinct board types (the heterogeneous v2+v3 array), the cut falls on
/// the type boundary so each half is homogeneous; otherwise boards are
/// halved by count. Once a node is a single board, further levels split
/// its cores, with the intra-board interconnect as the cut bandwidth.
///
/// # Example
///
/// ```
/// use accpar_hw::{AcceleratorArray, GroupTree};
///
/// let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(8), 3)?;
/// assert_eq!(tree.levels(), 3);
/// assert_eq!(tree.root().leaves().count(), 8);
/// # Ok::<(), accpar_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupTree {
    root: GroupNode,
    levels: usize,
}

impl GroupTree {
    /// Recursively bisects `array` into a complete tree of `levels`
    /// levels (so `2^levels` leaves).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::EmptyArray`] for an empty array and
    /// [`HwError::TooDeep`] when `levels` exceeds
    /// [`AcceleratorArray::max_levels`].
    pub fn bisect(array: &AcceleratorArray, levels: usize) -> Result<Self, HwError> {
        if array.is_empty() {
            return Err(HwError::EmptyArray);
        }
        let all = Group {
            shares: (0..array.len())
                .map(|board| Share {
                    board,
                    cores: array.boards()[board].cores(),
                })
                .collect(),
        };
        let caps = GroupCaps::of(&all, array);
        let mut root = GroupNode {
            link_bw: caps.net_bw,
            caps,
            group: all,
            children: None,
        };
        build(&mut root, array, levels).map_err(|()| HwError::TooDeep {
            requested: levels,
            max: array.max_levels(),
        })?;
        Ok(Self { root, levels })
    }

    /// The root node covering the whole array.
    #[must_use]
    pub const fn root(&self) -> &GroupNode {
        &self.root
    }

    /// Number of bisection levels.
    #[must_use]
    pub const fn levels(&self) -> usize {
        self.levels
    }
}

impl fmt::Display for GroupTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(node: &GroupNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(
                f,
                "{}{} cores, {:.0} TFLOPS, link {:.1} GB/s",
                "  ".repeat(depth),
                node.group().total_cores(),
                node.caps().flops / 1e12,
                node.link_bw() / 1e9
            )?;
            if let Some((l, r)) = node.children() {
                rec(l, depth + 1, f)?;
                rec(r, depth + 1, f)?;
            }
            Ok(())
        }
        rec(&self.root, 0, f)
    }
}

/// Splits `node` recursively for `levels` more levels. Returns `Err(())`
/// when a node can no longer be split.
fn build(node: &mut GroupNode, array: &AcceleratorArray, levels: usize) -> Result<(), ()> {
    if levels == 0 {
        return Ok(());
    }
    let (left_group, right_group, intra_board) = split(&node.group, array)?;
    let left_caps = GroupCaps::of(&left_group, array);
    let right_caps = GroupCaps::of(&right_group, array);
    let (left_link, right_link) = if intra_board {
        // The cut runs through one board: both halves talk over the
        // intra-board interconnect, in proportion to their core share.
        let board = left_group.shares()[0].board;
        let spec = &array.boards()[board];
        let total = spec.cores() as f64;
        (
            spec.ici_bw() * left_group.total_cores() as f64 / total,
            spec.ici_bw() * right_group.total_cores() as f64 / total,
        )
    } else {
        (left_caps.net_bw, right_caps.net_bw)
    };
    let mut left = GroupNode {
        group: left_group,
        caps: left_caps,
        link_bw: left_link,
        children: None,
    };
    let mut right = GroupNode {
        group: right_group,
        caps: right_caps,
        link_bw: right_link,
        children: None,
    };
    build(&mut left, array, levels - 1)?;
    build(&mut right, array, levels - 1)?;
    node.children = Some(Box::new((left, right)));
    Ok(())
}

/// Splits a group in two. Returns the halves and whether the cut runs
/// inside a single board.
fn split(group: &Group, array: &AcceleratorArray) -> Result<(Group, Group, bool), ()> {
    let shares = group.shares();
    if shares.len() > 1 {
        // Split the board list. Prefer the type boundary when the group is
        // exactly two homogeneous runs.
        let cut = type_boundary(shares, array).unwrap_or(shares.len() / 2);
        let (l, r) = shares.split_at(cut);
        Ok((
            Group { shares: l.to_vec() },
            Group { shares: r.to_vec() },
            false,
        ))
    } else {
        // Split the cores of the single remaining (partial) board.
        let share = shares[0];
        if share.cores < 2 {
            return Err(());
        }
        let half = share.cores / 2;
        Ok((
            Group {
                shares: vec![Share {
                    board: share.board,
                    cores: half,
                }],
            },
            Group {
                shares: vec![Share {
                    board: share.board,
                    cores: share.cores - half,
                }],
            },
            true,
        ))
    }
}

/// If `shares` is exactly two runs of distinct board types, returns the
/// index of the boundary between them.
fn type_boundary(shares: &[Share], array: &AcceleratorArray) -> Option<usize> {
    let name = |s: &Share| array.boards()[s.board].name();
    let mut boundary = None;
    for (i, pair) in shares.windows(2).enumerate() {
        if name(&pair[0]) != name(&pair[1]) {
            if boundary.is_some() {
                return None; // more than two runs
            }
            boundary = Some(i + 1);
        }
    }
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AcceleratorSpec;

    #[test]
    fn first_cut_separates_types() {
        let array = AcceleratorArray::heterogeneous_tpu(4, 4);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let (l, r) = tree.root().children().unwrap();
        assert_eq!(l.caps().flops, 4.0 * 180e12);
        assert_eq!(r.caps().flops, 4.0 * 420e12);
        // Each side reaches the other at its own aggregate bandwidth.
        assert_eq!(l.link_bw(), 4.0 * 1e9);
        assert_eq!(r.link_bw(), 4.0 * 2e9);
    }

    #[test]
    fn homogeneous_bisection_is_even() {
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(8), 3).unwrap();
        let leaves: Vec<_> = tree.root().leaves().collect();
        assert_eq!(leaves.len(), 8);
        for leaf in &leaves {
            assert_eq!(leaf.caps().flops, 420e12);
            assert_eq!(leaf.group().total_cores(), 8);
        }
        assert_eq!(tree.root().depth(), 3);
    }

    #[test]
    fn core_level_split_uses_ici() {
        // One 8-core board, 2 levels: 4+4 cores then deeper.
        let array = AcceleratorArray::homogeneous_tpu_v3(1);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let (l, r) = tree.root().children().unwrap();
        assert_eq!(l.group().total_cores(), 4);
        assert_eq!(r.group().total_cores(), 4);
        let spec = AcceleratorSpec::tpu_v3();
        assert_eq!(l.link_bw(), spec.ici_bw() * 0.5);
        // Caps scale with core share.
        assert_eq!(l.caps().flops, spec.peak_flops() * 0.5);
    }

    #[test]
    fn too_deep_is_reported() {
        let array = AcceleratorArray::homogeneous_tpu_v3(1);
        // 8 cores allow 3 levels; 4 must fail.
        let err = GroupTree::bisect(&array, 4).unwrap_err();
        assert_eq!(err, HwError::TooDeep { requested: 4, max: 3 });
        assert!(GroupTree::bisect(&array, 3).is_ok());
    }

    #[test]
    fn empty_array_is_rejected() {
        let err = GroupTree::bisect(&AcceleratorArray::new(vec![]), 1).unwrap_err();
        assert_eq!(err, HwError::EmptyArray);
    }

    #[test]
    fn odd_board_counts_split_floor_ceil() {
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(5), 1).unwrap();
        let (l, r) = tree.root().children().unwrap();
        assert_eq!(l.group().shares().len(), 2);
        assert_eq!(r.group().shares().len(), 3);
    }

    #[test]
    fn deep_heterogeneous_tree_reaches_cores() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        // 2 board levels + 3 core levels = 5.
        assert_eq!(array.max_levels(), 5);
        let tree = GroupTree::bisect(&array, 5).unwrap();
        assert_eq!(tree.root().leaves().count(), 32);
        for leaf in tree.root().leaves() {
            assert_eq!(leaf.group().total_cores(), 1);
        }
    }

    #[test]
    fn bisection_invariants_hold_for_many_shapes() {
        use proptest::prelude::*;
        proptest!(ProptestConfig::with_cases(32), |(
            v2 in 0usize..6,
            v3 in 0usize..6,
            levels in 0usize..4,
        )| {
            prop_assume!(v2 + v3 > 0);
            let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
            prop_assume!(levels <= array.max_levels());
            let tree = GroupTree::bisect(&array, levels).unwrap();
            // A complete binary tree of the requested depth.
            prop_assert_eq!(tree.root().leaves().count(), 1 << levels);
            prop_assert_eq!(tree.root().depth(), levels);
            // Compute is conserved across every level of the tree.
            fn check(node: &GroupNode) {
                if let Some((a, b)) = node.children() {
                    let sum = a.caps().flops + b.caps().flops;
                    assert!((sum - node.caps().flops).abs() < 1.0);
                    assert!(a.link_bw() > 0.0 && b.link_bw() > 0.0);
                    check(a);
                    check(b);
                }
            }
            check(tree.root());
        });
    }

    #[test]
    fn caps_sum_to_array_totals() {
        let array = AcceleratorArray::heterogeneous_tpu(3, 5);
        let tree = GroupTree::bisect(&array, 3).unwrap();
        let leaf_flops: f64 = tree.root().leaves().map(|l| l.caps().flops).sum();
        assert!((leaf_flops - array.total_flops()).abs() < 1.0);
    }
}
