use crate::array::AcceleratorArray;
use crate::error::HwError;
use crate::fault::FaultModel;
use std::fmt;

/// A share of one board: `cores` of the board's cores (all of them for a
/// whole-board share).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Share {
    /// Index of the board in the array.
    pub board: usize,
    /// Number of cores of that board in this group.
    pub cores: usize,
}

/// A set of (possibly partial) boards acting as one side of a bisection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    shares: Vec<Share>,
}

impl Group {
    /// The shares making up this group.
    #[must_use]
    pub fn shares(&self) -> &[Share] {
        &self.shares
    }

    /// Total number of cores in the group.
    #[must_use]
    pub fn total_cores(&self) -> usize {
        self.shares.iter().map(|s| s.cores).sum()
    }

    /// Whether the group consists only of whole boards.
    #[must_use]
    pub fn is_whole_boards(&self, array: &AcceleratorArray) -> bool {
        self.shares
            .iter()
            .all(|s| s.cores == array.boards()[s.board].cores())
    }
}

/// Aggregate capabilities of a group — the quantities the cost model
/// consumes: computation density `c_i` (FLOP/s), memory bandwidth
/// (bytes/s), external network bandwidth `b_i` (bytes/s) and HBM capacity
/// (bytes). Partial boards contribute proportionally to their core share.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupCaps {
    /// Aggregate peak compute, FLOP/s.
    pub flops: f64,
    /// Aggregate HBM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// Aggregate external network bandwidth, bytes/s.
    pub net_bw: f64,
    /// Aggregate HBM capacity, bytes.
    pub hbm_bytes: f64,
}

impl GroupCaps {
    fn zero() -> Self {
        Self {
            flops: 0.0,
            mem_bw: 0.0,
            net_bw: 0.0,
            hbm_bytes: 0.0,
        }
    }

    fn of(group: &Group, array: &AcceleratorArray) -> Self {
        let mut caps = Self::zero();
        for share in group.shares() {
            let spec = &array.boards()[share.board];
            let frac = share.cores as f64 / spec.cores() as f64;
            caps.flops += spec.peak_flops() * frac;
            caps.mem_bw += spec.mem_bw() * frac;
            caps.net_bw += spec.net_bw() * frac;
            caps.hbm_bytes += spec.hbm_bytes() as f64 * frac;
        }
        caps
    }
}

/// One node of the recursive bisection: a group, its aggregate caps, the
/// bandwidth it uses to reach its *sibling*, and (unless it is a leaf) two
/// children.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupNode {
    group: Group,
    caps: GroupCaps,
    link_bw: f64,
    children: Option<Box<(GroupNode, GroupNode)>>,
}

impl GroupNode {
    /// The accelerators in this node.
    #[must_use]
    pub const fn group(&self) -> &Group {
        &self.group
    }

    /// Aggregate capabilities of this node.
    #[must_use]
    pub const fn caps(&self) -> GroupCaps {
        self.caps
    }

    /// Bandwidth (bytes/s) this node uses to access its sibling's memory:
    /// its aggregate external network bandwidth across the cut, or a share
    /// of the intra-board interconnect when the cut runs through a board.
    /// For the root this is the array's aggregate external bandwidth.
    #[must_use]
    pub const fn link_bw(&self) -> f64 {
        self.link_bw
    }

    /// The two children produced by bisection, if this is not a leaf.
    #[must_use]
    pub fn children(&self) -> Option<(&GroupNode, &GroupNode)> {
        self.children.as_deref().map(|c| (&c.0, &c.1))
    }

    /// Whether this node is a leaf of the tree.
    #[must_use]
    pub const fn is_leaf(&self) -> bool {
        self.children.is_none()
    }

    /// Depth of the subtree below (and including) this node.
    #[must_use]
    pub fn depth(&self) -> usize {
        match self.children() {
            None => 0,
            Some((l, r)) => 1 + l.depth().max(r.depth()),
        }
    }

    /// Iterates over the leaves of this subtree, left to right.
    pub fn leaves(&self) -> Box<dyn Iterator<Item = &GroupNode> + '_> {
        match self.children() {
            None => Box::new(std::iter::once(self)),
            Some((l, r)) => Box::new(l.leaves().chain(r.leaves())),
        }
    }
}

/// The hierarchical bisection of an array into `levels` levels of group
/// pairs (§5.1: "apply the layer-wise partitioning recursively on a
/// partitioned hierarchy").
///
/// Bisection is *type-aware*: when a node contains exactly two runs of
/// distinct board types (the heterogeneous v2+v3 array), the cut falls on
/// the type boundary so each half is homogeneous; otherwise boards are
/// halved by count. Once a node is a single board, further levels split
/// its cores, with the intra-board interconnect as the cut bandwidth.
///
/// # Example
///
/// ```
/// use accpar_hw::{AcceleratorArray, GroupTree};
///
/// let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(8), 3)?;
/// assert_eq!(tree.levels(), 3);
/// assert_eq!(tree.root().leaves().count(), 8);
/// # Ok::<(), accpar_hw::HwError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GroupTree {
    root: GroupNode,
    levels: usize,
}

impl GroupTree {
    /// Recursively bisects `array` into a complete tree of `levels`
    /// levels (so `2^levels` leaves).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::EmptyArray`] for an empty array and
    /// [`HwError::TooDeep`] when `levels` exceeds
    /// [`AcceleratorArray::max_levels`].
    pub fn bisect(array: &AcceleratorArray, levels: usize) -> Result<Self, HwError> {
        if array.is_empty() {
            return Err(HwError::EmptyArray);
        }
        let all = Group {
            shares: (0..array.len())
                .map(|board| Share {
                    board,
                    cores: array.boards()[board].cores(),
                })
                .collect(),
        };
        let caps = GroupCaps::of(&all, array);
        let mut root = GroupNode {
            link_bw: caps.net_bw,
            caps,
            group: all,
            children: None,
        };
        build(&mut root, array, levels).map_err(|()| HwError::TooDeep {
            requested: levels,
            max: array.max_levels(),
        })?;
        Ok(Self { root, levels })
    }

    /// The root node covering the whole array.
    #[must_use]
    pub const fn root(&self) -> &GroupNode {
        &self.root
    }

    /// Number of bisection levels.
    #[must_use]
    pub const fn levels(&self) -> usize {
        self.levels
    }

    /// Number of internal nodes (cuts), in the pre-order numbering fault
    /// targets use.
    #[must_use]
    pub fn cut_count(&self) -> usize {
        fn count(node: &GroupNode) -> usize {
            match node.children() {
                None => 0,
                Some((l, r)) => 1 + count(l) + count(r),
            }
        }
        count(&self.root)
    }

    /// Number of leaves (`2^levels` for a complete bisection).
    #[must_use]
    pub fn leaf_count(&self) -> usize {
        self.root.leaves().count()
    }

    /// This tree with a fault model's compute and bandwidth faults
    /// folded into the node capabilities: faulted leaves lose FLOP/s,
    /// faulted cuts lose link bandwidth, and every ancestor's aggregate
    /// caps are recomputed bottom-up — so the cost model, the planner,
    /// and both simulator backends all see the degraded hardware through
    /// the ordinary [`GroupCaps`]/[`GroupNode::link_bw`] surface.
    ///
    /// Transient stalls and dropouts are *not* folded here: a stall is a
    /// per-step time offset (the simulators apply it), and a dropout
    /// changes the tree's shape (use [`GroupTree::without_leaf`]).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when a fault targets a leaf or
    /// cut outside this tree.
    pub fn degraded(&self, faults: &FaultModel) -> Result<Self, HwError> {
        faults.validate_for(self.leaf_count(), self.cut_count())?;
        let mut leaf_idx = 0usize;
        let mut node_idx = 0usize;
        let root = degrade_node(&self.root, faults, &mut leaf_idx, &mut node_idx);
        Ok(Self {
            root,
            levels: self.levels,
        })
    }

    /// The array and tree that remain after one leaf drops out: the
    /// boards the leaf owned are removed from `array` and the reduced
    /// array is re-bisected (with the hierarchy capped at the reduced
    /// array's maximum depth).
    ///
    /// The tree is rebuilt rather than patched: promoting the dropped
    /// leaf's sibling would leave an unbalanced tree whose shape no
    /// plan of the original depth matches, while a fresh bisection keeps
    /// every downstream invariant (complete tree, type-aware first cut).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::InvalidFault`] when `leaf` is out of range or
    /// the leaf covers only part of a board (core-level dropout is not
    /// supported — drop the whole board), and [`HwError::EmptyArray`]
    /// when the drop would remove the last board.
    pub fn without_leaf(
        &self,
        array: &AcceleratorArray,
        leaf: usize,
    ) -> Result<(AcceleratorArray, GroupTree), HwError> {
        self.without_leaves(array, &[leaf])
    }

    /// [`GroupTree::without_leaf`] for several dropped leaves at once —
    /// all victims' boards are removed from `array` in one pass and the
    /// reduced array is re-bisected once. Duplicate indices are ignored.
    ///
    /// # Errors
    ///
    /// The same conditions as [`GroupTree::without_leaf`], checked for
    /// every index.
    pub fn without_leaves(
        &self,
        array: &AcceleratorArray,
        drop: &[usize],
    ) -> Result<(AcceleratorArray, GroupTree), HwError> {
        let leaves: Vec<&GroupNode> = self.root.leaves().collect();
        let mut victims = drop.to_vec();
        victims.sort_unstable();
        victims.dedup();
        let mut dropped: Vec<usize> = Vec::new();
        for &leaf in &victims {
            if leaf >= leaves.len() {
                return Err(HwError::InvalidFault(format!(
                    "leaf {leaf} out of range for a tree with {} leaves",
                    leaves.len()
                )));
            }
            let victim = leaves[leaf];
            if !victim.group().is_whole_boards(array) {
                return Err(HwError::InvalidFault(format!(
                    "leaf {leaf} covers a partial board; dropout is board-granular"
                )));
            }
            dropped.extend(victim.group().shares().iter().map(|s| s.board));
        }
        let boards: Vec<_> = array
            .boards()
            .iter()
            .enumerate()
            .filter(|(i, _)| !dropped.contains(i))
            .map(|(_, b)| b.clone())
            .collect();
        if boards.is_empty() {
            return Err(HwError::EmptyArray);
        }
        let reduced = AcceleratorArray::new(boards);
        let levels = self.levels.min(reduced.max_levels());
        let tree = GroupTree::bisect(&reduced, levels)?;
        Ok((reduced, tree))
    }
}

/// Rebuilds a subtree with fault factors folded in. Leaves are numbered
/// left to right, internal nodes in pre-order — matching the simulator's
/// geometry walk.
fn degrade_node(
    node: &GroupNode,
    faults: &FaultModel,
    leaf_idx: &mut usize,
    node_idx: &mut usize,
) -> GroupNode {
    match node.children() {
        None => {
            let i = *leaf_idx;
            *leaf_idx += 1;
            let mut caps = node.caps;
            caps.flops *= faults.compute_factor(i);
            GroupNode {
                group: node.group.clone(),
                caps,
                link_bw: node.link_bw,
                children: None,
            }
        }
        Some((a, b)) => {
            let i = *node_idx;
            *node_idx += 1;
            let bw = faults.bandwidth_factor(i);
            let mut left = degrade_node(a, faults, leaf_idx, node_idx);
            let mut right = degrade_node(b, faults, leaf_idx, node_idx);
            left.link_bw *= bw;
            right.link_bw *= bw;
            let caps = GroupCaps {
                flops: left.caps.flops + right.caps.flops,
                mem_bw: left.caps.mem_bw + right.caps.mem_bw,
                net_bw: left.caps.net_bw + right.caps.net_bw,
                hbm_bytes: left.caps.hbm_bytes + right.caps.hbm_bytes,
            };
            GroupNode {
                group: node.group.clone(),
                caps,
                link_bw: node.link_bw,
                children: Some(Box::new((left, right))),
            }
        }
    }
}

impl fmt::Display for GroupTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(node: &GroupNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(
                f,
                "{}{} cores, {:.0} TFLOPS, link {:.1} GB/s",
                "  ".repeat(depth),
                node.group().total_cores(),
                node.caps().flops / 1e12,
                node.link_bw() / 1e9
            )?;
            if let Some((l, r)) = node.children() {
                rec(l, depth + 1, f)?;
                rec(r, depth + 1, f)?;
            }
            Ok(())
        }
        rec(&self.root, 0, f)
    }
}

/// Splits `node` recursively for `levels` more levels. Returns `Err(())`
/// when a node can no longer be split.
fn build(node: &mut GroupNode, array: &AcceleratorArray, levels: usize) -> Result<(), ()> {
    if levels == 0 {
        return Ok(());
    }
    let (left_group, right_group, intra_board) = split(&node.group, array)?;
    let left_caps = GroupCaps::of(&left_group, array);
    let right_caps = GroupCaps::of(&right_group, array);
    let (left_link, right_link) = if intra_board {
        // The cut runs through one board: both halves talk over the
        // intra-board interconnect, in proportion to their core share.
        let board = left_group.shares()[0].board;
        let spec = &array.boards()[board];
        let total = spec.cores() as f64;
        (
            spec.ici_bw() * left_group.total_cores() as f64 / total,
            spec.ici_bw() * right_group.total_cores() as f64 / total,
        )
    } else {
        (left_caps.net_bw, right_caps.net_bw)
    };
    let mut left = GroupNode {
        group: left_group,
        caps: left_caps,
        link_bw: left_link,
        children: None,
    };
    let mut right = GroupNode {
        group: right_group,
        caps: right_caps,
        link_bw: right_link,
        children: None,
    };
    build(&mut left, array, levels - 1)?;
    build(&mut right, array, levels - 1)?;
    node.children = Some(Box::new((left, right)));
    Ok(())
}

/// Splits a group in two. Returns the halves and whether the cut runs
/// inside a single board.
fn split(group: &Group, array: &AcceleratorArray) -> Result<(Group, Group, bool), ()> {
    let shares = group.shares();
    if shares.len() > 1 {
        // Split the board list. Prefer the type boundary when the group is
        // exactly two homogeneous runs.
        let cut = type_boundary(shares, array).unwrap_or(shares.len() / 2);
        let (l, r) = shares.split_at(cut);
        Ok((
            Group { shares: l.to_vec() },
            Group { shares: r.to_vec() },
            false,
        ))
    } else {
        // Split the cores of the single remaining (partial) board.
        let share = shares[0];
        if share.cores < 2 {
            return Err(());
        }
        let half = share.cores / 2;
        Ok((
            Group {
                shares: vec![Share {
                    board: share.board,
                    cores: half,
                }],
            },
            Group {
                shares: vec![Share {
                    board: share.board,
                    cores: share.cores - half,
                }],
            },
            true,
        ))
    }
}

/// If `shares` is exactly two runs of distinct board types, returns the
/// index of the boundary between them.
fn type_boundary(shares: &[Share], array: &AcceleratorArray) -> Option<usize> {
    let name = |s: &Share| array.boards()[s.board].name();
    let mut boundary = None;
    for (i, pair) in shares.windows(2).enumerate() {
        if name(&pair[0]) != name(&pair[1]) {
            if boundary.is_some() {
                return None; // more than two runs
            }
            boundary = Some(i + 1);
        }
    }
    boundary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AcceleratorSpec;

    #[test]
    fn first_cut_separates_types() {
        let array = AcceleratorArray::heterogeneous_tpu(4, 4);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let (l, r) = tree.root().children().unwrap();
        assert_eq!(l.caps().flops, 4.0 * 180e12);
        assert_eq!(r.caps().flops, 4.0 * 420e12);
        // Each side reaches the other at its own aggregate bandwidth.
        assert_eq!(l.link_bw(), 4.0 * 1e9);
        assert_eq!(r.link_bw(), 4.0 * 2e9);
    }

    #[test]
    fn homogeneous_bisection_is_even() {
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(8), 3).unwrap();
        let leaves: Vec<_> = tree.root().leaves().collect();
        assert_eq!(leaves.len(), 8);
        for leaf in &leaves {
            assert_eq!(leaf.caps().flops, 420e12);
            assert_eq!(leaf.group().total_cores(), 8);
        }
        assert_eq!(tree.root().depth(), 3);
    }

    #[test]
    fn core_level_split_uses_ici() {
        // One 8-core board, 2 levels: 4+4 cores then deeper.
        let array = AcceleratorArray::homogeneous_tpu_v3(1);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let (l, r) = tree.root().children().unwrap();
        assert_eq!(l.group().total_cores(), 4);
        assert_eq!(r.group().total_cores(), 4);
        let spec = AcceleratorSpec::tpu_v3();
        assert_eq!(l.link_bw(), spec.ici_bw() * 0.5);
        // Caps scale with core share.
        assert_eq!(l.caps().flops, spec.peak_flops() * 0.5);
    }

    #[test]
    fn too_deep_is_reported() {
        let array = AcceleratorArray::homogeneous_tpu_v3(1);
        // 8 cores allow 3 levels; 4 must fail.
        let err = GroupTree::bisect(&array, 4).unwrap_err();
        assert_eq!(err, HwError::TooDeep { requested: 4, max: 3 });
        assert!(GroupTree::bisect(&array, 3).is_ok());
    }

    #[test]
    fn empty_array_is_rejected() {
        let err = GroupTree::bisect(&AcceleratorArray::new(vec![]), 1).unwrap_err();
        assert_eq!(err, HwError::EmptyArray);
    }

    #[test]
    fn odd_board_counts_split_floor_ceil() {
        let tree = GroupTree::bisect(&AcceleratorArray::homogeneous_tpu_v3(5), 1).unwrap();
        let (l, r) = tree.root().children().unwrap();
        assert_eq!(l.group().shares().len(), 2);
        assert_eq!(r.group().shares().len(), 3);
    }

    #[test]
    fn deep_heterogeneous_tree_reaches_cores() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        // 2 board levels + 3 core levels = 5.
        assert_eq!(array.max_levels(), 5);
        let tree = GroupTree::bisect(&array, 5).unwrap();
        assert_eq!(tree.root().leaves().count(), 32);
        for leaf in tree.root().leaves() {
            assert_eq!(leaf.group().total_cores(), 1);
        }
    }

    #[test]
    fn bisection_invariants_hold_for_many_shapes() {
        fn check(node: &GroupNode) {
            if let Some((a, b)) = node.children() {
                let sum = a.caps().flops + b.caps().flops;
                assert!((sum - node.caps().flops).abs() < 1.0);
                assert!(a.link_bw() > 0.0 && b.link_bw() > 0.0);
                check(a);
                check(b);
            }
        }
        for v2 in 0usize..6 {
            for v3 in 0usize..6 {
                if v2 + v3 == 0 {
                    continue;
                }
                let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
                for levels in 0usize..4 {
                    if levels > array.max_levels() {
                        continue;
                    }
                    let tree = GroupTree::bisect(&array, levels).unwrap();
                    // A complete binary tree of the requested depth.
                    assert_eq!(tree.root().leaves().count(), 1 << levels);
                    assert_eq!(tree.root().depth(), levels);
                    // Compute is conserved across every level of the tree.
                    check(tree.root());
                }
            }
        }
    }

    #[test]
    fn caps_sum_to_array_totals() {
        let array = AcceleratorArray::heterogeneous_tpu(3, 5);
        let tree = GroupTree::bisect(&array, 3).unwrap();
        let leaf_flops: f64 = tree.root().leaves().map(|l| l.caps().flops).sum();
        assert!((leaf_flops - array.total_flops()).abs() < 1.0);
    }

    #[test]
    fn degraded_scales_leaf_flops_and_ancestors() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        let faults = FaultModel::new().slow_leaf(0, 0.5).unwrap();
        let degraded = tree.degraded(&faults).unwrap();

        let orig: Vec<f64> = tree.root().leaves().map(|l| l.caps().flops).collect();
        let got: Vec<f64> = degraded.root().leaves().map(|l| l.caps().flops).collect();
        assert_eq!(got[0], orig[0] * 0.5);
        assert_eq!(&got[1..], &orig[1..]);
        // Ancestors re-aggregate the degraded leaf.
        assert!(
            (degraded.root().caps().flops - (tree.root().caps().flops - orig[0] * 0.5)).abs()
                < 1.0
        );
        // Non-compute caps are untouched.
        assert_eq!(degraded.root().caps().mem_bw, tree.root().caps().mem_bw);
        assert_eq!(degraded.levels(), tree.levels());
    }

    #[test]
    fn degraded_scales_cut_links_preorder() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        // Cut 1 is the root's left child (pre-order: root=0, left=1,
        // right=4 — the left subtree holds nodes 1..4).
        let faults = FaultModel::new().degrade_cut(1, 0.25).unwrap();
        let degraded = tree.degraded(&faults).unwrap();
        let (l, r) = tree.root().children().unwrap();
        let (dl, dr) = degraded.root().children().unwrap();
        // The root cut (index 0) is untouched.
        assert_eq!(dl.link_bw(), l.link_bw());
        assert_eq!(dr.link_bw(), r.link_bw());
        // The left child's own children lost bandwidth, the right's kept it.
        let (ll, lr) = l.children().unwrap();
        let (dll, dlr) = dl.children().unwrap();
        assert_eq!(dll.link_bw(), ll.link_bw() * 0.25);
        assert_eq!(dlr.link_bw(), lr.link_bw() * 0.25);
        let (rl, _) = r.children().unwrap();
        let (drl, _) = dr.children().unwrap();
        assert_eq!(drl.link_bw(), rl.link_bw());
    }

    #[test]
    fn degraded_rejects_out_of_range_targets() {
        let tree = GroupTree::bisect(&AcceleratorArray::heterogeneous_tpu(2, 2), 1).unwrap();
        assert_eq!(tree.leaf_count(), 2);
        assert_eq!(tree.cut_count(), 1);
        let bad_leaf = FaultModel::new().slow_leaf(2, 0.5).unwrap();
        assert!(matches!(
            tree.degraded(&bad_leaf),
            Err(HwError::InvalidFault(_))
        ));
        let bad_cut = FaultModel::new().degrade_cut(1, 0.5).unwrap();
        assert!(matches!(
            tree.degraded(&bad_cut),
            Err(HwError::InvalidFault(_))
        ));
    }

    #[test]
    fn without_leaf_rebuilds_reduced_array() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        let tree = GroupTree::bisect(&array, 2).unwrap();
        // Leaf 0 is one tpu-v2 board.
        let (reduced, new_tree) = tree.without_leaf(&array, 0).unwrap();
        assert_eq!(reduced.len(), 3);
        assert_eq!(
            reduced.boards().iter().filter(|b| b.name() == "tpu-v2").count(),
            1
        );
        assert_eq!(new_tree.levels(), 2);
        assert_eq!(new_tree.leaf_count(), 4);
        assert!(
            (new_tree.root().caps().flops - (array.total_flops() - 180e12)).abs() < 1.0
        );
    }

    #[test]
    fn without_leaf_caps_hierarchy_depth() {
        // 2 boards at 1 level: dropping one leaves a single board, which
        // still supports core-level splits, so the level count survives.
        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        let (reduced, new_tree) = tree.without_leaf(&array, 1).unwrap();
        assert_eq!(reduced.len(), 1);
        assert_eq!(new_tree.levels(), 1);
        assert_eq!(new_tree.leaf_count(), 2);
    }

    #[test]
    fn without_leaf_rejects_partial_boards_and_bad_indices() {
        let array = AcceleratorArray::homogeneous_tpu_v3(1);
        // 2 levels split the single board's cores: leaves are partial.
        let tree = GroupTree::bisect(&array, 2).unwrap();
        assert!(matches!(
            tree.without_leaf(&array, 0),
            Err(HwError::InvalidFault(_))
        ));

        let array = AcceleratorArray::homogeneous_tpu_v3(2);
        let tree = GroupTree::bisect(&array, 1).unwrap();
        assert!(matches!(
            tree.without_leaf(&array, 9),
            Err(HwError::InvalidFault(_))
        ));
    }

    #[test]
    fn without_last_board_is_empty() {
        let array = AcceleratorArray::homogeneous_tpu_v3(1);
        let tree = GroupTree::bisect(&array, 0).unwrap();
        assert_eq!(tree.without_leaf(&array, 0), Err(HwError::EmptyArray));
    }
}
