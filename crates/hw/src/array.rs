use crate::spec::AcceleratorSpec;
use std::fmt;

/// An ordered collection of accelerator boards.
///
/// Order matters for hierarchical bisection: boards of the same type are
/// kept adjacent so the first cut of a [`GroupTree`](crate::GroupTree)
/// separates heterogeneous halves cleanly (v2 vs v3 in the paper's
/// evaluation).
///
/// # Example
///
/// ```
/// use accpar_hw::AcceleratorArray;
///
/// let array = AcceleratorArray::heterogeneous_tpu(128, 128);
/// assert_eq!(array.len(), 256);
/// // Aggregate compute: 128·180T + 128·420T.
/// assert_eq!(array.total_flops(), 128.0 * 180e12 + 128.0 * 420e12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorArray {
    boards: Vec<AcceleratorSpec>,
}

impl AcceleratorArray {
    /// Creates an array from an explicit list of boards.
    #[must_use]
    pub fn new(boards: Vec<AcceleratorSpec>) -> Self {
        Self { boards }
    }

    /// `n` identical boards.
    #[must_use]
    pub fn homogeneous(spec: AcceleratorSpec, n: usize) -> Self {
        Self {
            boards: vec![spec; n],
        }
    }

    /// The paper's heterogeneous array: `n_v2` TPU-v2 boards followed by
    /// `n_v3` TPU-v3 boards (§6.2 uses 128 + 128).
    #[must_use]
    pub fn heterogeneous_tpu(n_v2: usize, n_v3: usize) -> Self {
        let mut boards = vec![AcceleratorSpec::tpu_v2(); n_v2];
        boards.extend(vec![AcceleratorSpec::tpu_v3(); n_v3]);
        Self { boards }
    }

    /// The paper's homogeneous array: `n` TPU-v3 boards (§6.3 uses 128).
    #[must_use]
    pub fn homogeneous_tpu_v3(n: usize) -> Self {
        Self::homogeneous(AcceleratorSpec::tpu_v3(), n)
    }

    /// The boards in array order.
    #[must_use]
    pub fn boards(&self) -> &[AcceleratorSpec] {
        &self.boards
    }

    /// Number of boards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.boards.len()
    }

    /// Whether the array has no boards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boards.is_empty()
    }

    /// Sum of peak FLOPS over all boards.
    #[must_use]
    pub fn total_flops(&self) -> f64 {
        self.boards.iter().map(AcceleratorSpec::peak_flops).sum()
    }

    /// Sum of HBM capacity over all boards, in bytes.
    #[must_use]
    pub fn total_hbm_bytes(&self) -> u64 {
        self.boards.iter().map(AcceleratorSpec::hbm_bytes).sum()
    }

    /// Whether all boards share one specification.
    #[must_use]
    pub fn is_homogeneous(&self) -> bool {
        self.boards.windows(2).all(|w| w[0] == w[1])
    }

    /// Maximum hierarchical bisection depth: boards halve until single,
    /// then cores halve until single.
    #[must_use]
    pub fn max_levels(&self) -> usize {
        if self.boards.is_empty() {
            return 0;
        }
        let board_levels = usize::BITS as usize - 1 - self.boards.len().leading_zeros() as usize;
        let min_cores = self
            .boards
            .iter()
            .map(AcceleratorSpec::cores)
            .min()
            .unwrap_or(1);
        let core_levels = usize::BITS as usize - 1 - min_cores.leading_zeros() as usize;
        board_levels + core_levels
    }
}

impl fmt::Display for AcceleratorArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.boards.is_empty() {
            return write!(f, "empty array");
        }
        // Group consecutive identical boards for a compact rendering.
        let mut runs: Vec<(usize, &AcceleratorSpec)> = Vec::new();
        for board in &self.boards {
            match runs.last_mut() {
                Some((count, spec)) if *spec == board => *count += 1,
                _ => runs.push((1, board)),
            }
        }
        let parts: Vec<String> = runs
            .iter()
            .map(|(count, spec)| format!("{count}x {}", spec.name()))
            .collect();
        write!(f, "{}", parts.join(" + "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heterogeneous_keeps_types_adjacent() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 3);
        assert_eq!(array.len(), 5);
        assert_eq!(array.boards()[0].name(), "tpu-v2");
        assert_eq!(array.boards()[1].name(), "tpu-v2");
        assert_eq!(array.boards()[2].name(), "tpu-v3");
        assert!(!array.is_homogeneous());
    }

    #[test]
    fn homogeneous_detection() {
        assert!(AcceleratorArray::homogeneous_tpu_v3(4).is_homogeneous());
        assert!(AcceleratorArray::new(vec![]).is_homogeneous());
    }

    #[test]
    fn max_levels_counts_boards_then_cores() {
        // 256 boards of 8 cores: 8 board levels + 3 core levels.
        let array = AcceleratorArray::heterogeneous_tpu(128, 128);
        assert_eq!(array.max_levels(), 11);
        // A single 8-core board still allows 3 levels.
        let one = AcceleratorArray::homogeneous_tpu_v3(1);
        assert_eq!(one.max_levels(), 3);
        assert_eq!(AcceleratorArray::new(vec![]).max_levels(), 0);
    }

    #[test]
    fn display_compacts_runs() {
        let array = AcceleratorArray::heterogeneous_tpu(2, 2);
        assert_eq!(array.to_string(), "2x tpu-v2 + 2x tpu-v3");
    }
}
