//! The tensor partition space of AccPar (§3 of the paper).
//!
//! DNN training couples three tensor computations per layer — forward,
//! backward and gradient — over tensors spanning exactly three
//! dimensions: the mini-batch `B`, the layer input size `D_{i,l}` and the
//! layer output size `D_{o,l}`. Because only one dimension can be free in
//! a valid two-way partition, there are exactly **three basic partition
//! types** ([`PartitionType`]), and they form the *complete* partition
//! space (§3.4):
//!
//! | Type | Partitioned dim | Replicated tensor | Partial-sum phase |
//! |------|-----------------|-------------------|-------------------|
//! | I    | `B`             | `W_l`             | gradient          |
//! | II   | `D_{i,l}`       | `E_{l+1}`         | forward           |
//! | III  | `D_{o,l}`       | `F_l`             | backward          |
//!
//! This crate provides the types ([`PartitionType`], [`Phase`]), the
//! partition ratio ([`Ratio`]), per-layer and per-network plans
//! ([`LayerPlan`], [`NetworkPlan`], [`HierPlan`]), the Table 3 rotational
//! symmetry ([`symmetry`]), and the per-group tensor assignment used by
//! the simulator ([`assign`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod plan;
mod plan_tree;
mod ptype;
mod ratio;
mod scales;
pub mod symmetry;

pub use assignment::{assign, GroupTensors};
pub use plan::{HierPlan, LayerPlan, NetworkPlan};
pub use plan_tree::PlanTree;
pub use ptype::{PartitionType, Phase};
pub use ratio::{Ratio, RatioError};
pub use scales::ShardScales;
