use crate::ptype::PartitionType;
use crate::ratio::Ratio;
use std::fmt;

/// The partition decision for one weighted layer: a basic type and the
/// ratio assigned to the first accelerator group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPlan {
    /// The basic partition type `t ∈ 𝒯`.
    pub ptype: PartitionType,
    /// The first group's share `α`.
    pub ratio: Ratio,
}

impl LayerPlan {
    /// Creates a plan entry.
    #[must_use]
    pub const fn new(ptype: PartitionType, ratio: Ratio) -> Self {
        Self { ptype, ratio }
    }

    /// Type-I with an equal split — the data-parallel default.
    #[must_use]
    pub const fn data_parallel() -> Self {
        Self::new(PartitionType::TypeI, Ratio::EQUAL)
    }
}

impl fmt::Display for LayerPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.ptype, self.ratio)
    }
}

/// A partition plan for every weighted layer of a network, in
/// weighted-layer index order, for **one** bisection level.
///
/// # Example
///
/// ```
/// use accpar_partition::{LayerPlan, NetworkPlan, PartitionType, Ratio};
///
/// let plan = NetworkPlan::uniform(3, LayerPlan::data_parallel());
/// assert_eq!(plan.len(), 3);
/// assert_eq!(plan.count(PartitionType::TypeI), 3);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkPlan {
    layers: Vec<LayerPlan>,
}

impl NetworkPlan {
    /// Creates a plan from per-layer entries.
    #[must_use]
    pub fn new(layers: Vec<LayerPlan>) -> Self {
        Self { layers }
    }

    /// A plan assigning the same entry to all `n` layers.
    #[must_use]
    pub fn uniform(n: usize, entry: LayerPlan) -> Self {
        Self {
            layers: vec![entry; n],
        }
    }

    /// The per-layer entries.
    #[must_use]
    pub fn layers(&self) -> &[LayerPlan] {
        &self.layers
    }

    /// The entry for weighted layer `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn layer(&self, index: usize) -> LayerPlan {
        self.layers[index]
    }

    /// Number of weighted layers covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the plan covers no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// How many layers use the given type — the Figure 7 statistic.
    #[must_use]
    pub fn count(&self, ptype: PartitionType) -> usize {
        self.layers.iter().filter(|l| l.ptype == ptype).count()
    }

    /// Per-layer type codes, e.g. `"III22"` — Figure 7's rendering.
    #[must_use]
    pub fn type_string(&self) -> String {
        self.layers.iter().map(|l| l.ptype.code()).collect()
    }
}

impl FromIterator<LayerPlan> for NetworkPlan {
    fn from_iter<I: IntoIterator<Item = LayerPlan>>(iter: I) -> Self {
        Self {
            layers: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for NetworkPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, layer) in self.layers.iter().enumerate() {
            writeln!(f, "  L{i}: {layer}")?;
        }
        Ok(())
    }
}

/// A hierarchical plan: one [`NetworkPlan`] per bisection level, outermost
/// first (§5.1's recursive application of the layer-wise search).
#[derive(Debug, Clone, PartialEq)]
pub struct HierPlan {
    levels: Vec<NetworkPlan>,
}

impl HierPlan {
    /// Creates a hierarchical plan from per-level plans.
    #[must_use]
    pub fn new(levels: Vec<NetworkPlan>) -> Self {
        Self { levels }
    }

    /// The per-level plans, outermost bisection first.
    #[must_use]
    pub fn levels(&self) -> &[NetworkPlan] {
        &self.levels
    }

    /// Number of bisection levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Total count of a type across all levels and layers (the Figure 7
    /// aggregate).
    #[must_use]
    pub fn count(&self, ptype: PartitionType) -> usize {
        self.levels.iter().map(|p| p.count(ptype)).sum()
    }
}

impl fmt::Display for HierPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (level, plan) in self.levels.iter().enumerate() {
            writeln!(f, "level {level}: {}", plan.type_string())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plan_counts() {
        let plan = NetworkPlan::uniform(5, LayerPlan::data_parallel());
        assert_eq!(plan.count(PartitionType::TypeI), 5);
        assert_eq!(plan.count(PartitionType::TypeII), 0);
        assert_eq!(plan.type_string(), "IIIII");
        assert!(!plan.is_empty());
    }

    #[test]
    fn from_iterator_collects() {
        let plan: NetworkPlan = PartitionType::ALL
            .iter()
            .map(|&t| LayerPlan::new(t, Ratio::EQUAL))
            .collect();
        assert_eq!(plan.type_string(), "I23");
        assert_eq!(plan.layer(1).ptype, PartitionType::TypeII);
    }

    #[test]
    fn hierarchy_aggregates_counts() {
        let l0 = NetworkPlan::uniform(2, LayerPlan::data_parallel());
        let l1 = NetworkPlan::uniform(
            2,
            LayerPlan::new(PartitionType::TypeIII, Ratio::EQUAL),
        );
        let hier = HierPlan::new(vec![l0, l1]);
        assert_eq!(hier.depth(), 2);
        assert_eq!(hier.count(PartitionType::TypeI), 2);
        assert_eq!(hier.count(PartitionType::TypeIII), 2);
        let rendered = hier.to_string();
        assert!(rendered.contains("level 0: II"));
        assert!(rendered.contains("level 1: 33"));
    }

    #[test]
    fn display_layer_plan() {
        let p = LayerPlan::new(PartitionType::TypeII, Ratio::new(0.7).unwrap());
        assert_eq!(p.to_string(), "Type-II @ 0.700");
    }
}
