use crate::plan::LayerPlan;
use crate::ptype::PartitionType;
use accpar_dnn::TrainLayer;
use accpar_tensor::split::split_two;

/// What one accelerator group holds and computes for one weighted layer
/// under a [`LayerPlan`] — the integer-exact lowering of a fractional
/// ratio that the trace-based simulator consumes.
///
/// Element counts are *after* the partial-sum exchange of the type's psum
/// phase completes (e.g. under Type-II each group ends holding the full
/// `F_{l+1}`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupTensors {
    /// Integer share of the partitioned dimension.
    pub dim_share: usize,
    /// Length of the partitioned dimension.
    pub dim_len: usize,
    /// Elements of `F_l` (and `E_l`) this group holds.
    pub f_in_elems: u64,
    /// Elements of `F_{l+1}` (and `E_{l+1}`) this group holds.
    pub f_out_elems: u64,
    /// Elements of `W_l` (and `ΔW_l`) this group holds.
    pub weight_elems: u64,
    /// Whether `W_l` is fully replicated on this group (Type-I).
    pub weight_replicated: bool,
    /// Whether `F_l` is fully replicated on this group (Type-III).
    pub f_in_replicated: bool,
    /// FLOPs this group performs in the forward phase.
    pub forward_flops: u64,
    /// FLOPs this group performs in the backward phase.
    pub backward_flops: u64,
    /// FLOPs this group performs in the gradient phase.
    pub gradient_flops: u64,
    /// Elements of the partial-sum tensor this group fetches from its
    /// sibling during the type's psum phase (Table 4: independent of the
    /// ratio).
    pub psum_elems: u64,
}

impl GroupTensors {
    /// Total FLOPs over the three phases.
    #[must_use]
    pub const fn total_flops(&self) -> u64 {
        self.forward_flops + self.backward_flops + self.gradient_flops
    }

    /// Fraction of the partitioned dimension held.
    #[must_use]
    pub fn share_fraction(&self) -> f64 {
        self.dim_share as f64 / self.dim_len as f64
    }
}

/// Scales `total` by `share / len` exactly (in `u128` to avoid overflow).
fn scaled(total: u64, share: usize, len: usize) -> u64 {
    ((total as u128 * share as u128) / len as u128) as u64
}

/// Lowers a layer plan onto a layer: the integer tensor shares, FLOP
/// shares and partial-sum volumes for the two groups.
///
/// The first group receives the leading `round(α·n)` slice of the
/// partitioned dimension, the second group the rest.
///
/// # Example
///
/// ```
/// use accpar_dnn::zoo;
/// use accpar_partition::{assign, LayerPlan, PartitionType, Ratio};
///
/// let net = zoo::lenet(100)?;
/// let view = net.train_view()?;
/// let layer = view.layers().next().unwrap();
/// let plan = LayerPlan::new(PartitionType::TypeI, Ratio::new(0.75)?);
/// let (a, b) = assign(layer, plan);
/// assert_eq!(a.dim_share, 75);
/// assert_eq!(b.dim_share, 25);
/// assert!(a.weight_replicated && b.weight_replicated);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn assign(layer: &TrainLayer, plan: LayerPlan) -> (GroupTensors, GroupTensors) {
    let dim_len = match plan.ptype {
        PartitionType::TypeI => layer.batch(),
        PartitionType::TypeII => layer.d_in(),
        PartitionType::TypeIII => layer.d_out(),
    };
    let (share_a, share_b) = split_two(dim_len, plan.ratio.value());
    (
        group_tensors(layer, plan.ptype, share_a, dim_len),
        group_tensors(layer, plan.ptype, share_b, dim_len),
    )
}

fn group_tensors(
    layer: &TrainLayer,
    ptype: PartitionType,
    share: usize,
    dim_len: usize,
) -> GroupTensors {
    let f_in = layer.in_fmap().size();
    let f_out = layer.out_fmap().size();
    let w = layer.weight().size();
    let win = layer.kind().window_size() as u64;
    // In two of the three phases the partitioned dimension indexes the
    // *output*, so the group computes an exact `share/dim_len` slice of
    // the output elements. In the type's psum phase the partitioned
    // dimension is the *reduction* dimension (Table 3): the group computes
    // every output element, but only a partial sum over its share —
    // `A(out) · (2·share·win − 1)` FLOPs, the final cross-group addition
    // being the psum exchange itself.
    let partial = |out_elems: u64, reduction_share: u64| -> u64 {
        if reduction_share == 0 {
            0
        } else {
            out_elems * (2 * reduction_share - 1)
        }
    };
    let (forward_flops, backward_flops, gradient_flops) = match ptype {
        PartitionType::TypeI => (
            scaled(layer.forward_flops(), share, dim_len),
            scaled(layer.backward_flops(), share, dim_len),
            partial(w, share as u64 * layer.out_fmap().spatial_size() as u64),
        ),
        PartitionType::TypeII => (
            partial(f_out, share as u64 * win),
            scaled(layer.backward_flops(), share, dim_len),
            scaled(layer.gradient_flops(), share, dim_len),
        ),
        PartitionType::TypeIII => (
            scaled(layer.forward_flops(), share, dim_len),
            partial(f_in, share as u64 * win),
            scaled(layer.gradient_flops(), share, dim_len),
        ),
    };

    let (f_in_elems, f_out_elems, weight_elems, weight_replicated, f_in_replicated, psum_elems) =
        match ptype {
            // Type-I: batch split, weight replicated, psum on ΔW (A(W_l)).
            PartitionType::TypeI => (
                scaled(f_in, share, dim_len),
                scaled(f_out, share, dim_len),
                w,
                true,
                false,
                w,
            ),
            // Type-II: D_i split, E_{l+1} replicated, psum on F_{l+1}.
            PartitionType::TypeII => (
                scaled(f_in, share, dim_len),
                f_out,
                scaled(w, share, dim_len),
                false,
                false,
                f_out,
            ),
            // Type-III: D_o split, F_l replicated, psum on E_l (= A(F_l)).
            PartitionType::TypeIII => (
                f_in,
                scaled(f_out, share, dim_len),
                scaled(w, share, dim_len),
                false,
                true,
                f_in,
            ),
        };

    GroupTensors {
        dim_share: share,
        dim_len,
        f_in_elems,
        f_out_elems,
        weight_elems,
        weight_replicated,
        f_in_replicated,
        forward_flops,
        backward_flops,
        gradient_flops,
        psum_elems,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ratio::Ratio;
    use accpar_dnn::NetworkBuilder;
    use accpar_tensor::FeatureShape;

    fn fc_layer(batch: usize, d_in: usize, d_out: usize) -> TrainLayer {
        NetworkBuilder::new("t", FeatureShape::fc(batch, d_in))
            .linear("fc", d_in, d_out)
            .build()
            .unwrap()
            .train_view()
            .unwrap()
            .layers()
            .next()
            .unwrap()
            .clone()
    }

    #[test]
    fn type_i_replicates_weight_and_splits_batch() {
        let layer = fc_layer(100, 20, 30);
        let plan = LayerPlan::new(PartitionType::TypeI, Ratio::new(0.6).unwrap());
        let (a, b) = assign(&layer, plan);
        assert_eq!(a.dim_share, 60);
        assert_eq!(b.dim_share, 40);
        assert_eq!(a.weight_elems, 600);
        assert_eq!(b.weight_elems, 600);
        assert!(a.weight_replicated);
        assert_eq!(a.f_in_elems, 60 * 20);
        assert_eq!(b.f_in_elems, 40 * 20);
        // Psum is on ΔW: size A(W), identical for both.
        assert_eq!(a.psum_elems, 600);
        assert_eq!(b.psum_elems, 600);
    }

    #[test]
    fn type_ii_splits_input_dim_and_psums_on_f_out() {
        let layer = fc_layer(100, 20, 30);
        let plan = LayerPlan::new(PartitionType::TypeII, Ratio::new(0.5).unwrap());
        let (a, b) = assign(&layer, plan);
        assert_eq!(a.dim_share, 10);
        assert_eq!(a.weight_elems, 300);
        assert_eq!(a.f_in_elems, 100 * 10);
        // After the psum each holds the full output.
        assert_eq!(a.f_out_elems, 100 * 30);
        assert_eq!(a.psum_elems, 100 * 30);
        assert!(!a.weight_replicated && !b.weight_replicated);
    }

    #[test]
    fn type_iii_replicates_input_and_psums_on_e_l() {
        let layer = fc_layer(100, 20, 30);
        let plan = LayerPlan::new(PartitionType::TypeIII, Ratio::new(0.3).unwrap());
        let (a, b) = assign(&layer, plan);
        assert_eq!(a.dim_share, 9);
        assert_eq!(b.dim_share, 21);
        assert!(a.f_in_replicated);
        assert_eq!(a.f_in_elems, 100 * 20);
        assert_eq!(a.f_out_elems, 100 * 9);
        assert_eq!(a.weight_elems, 20 * 9);
        assert_eq!(a.psum_elems, 100 * 20);
    }

    #[test]
    fn assignment_matches_shard_scales_at_one_level() {
        // The integer lowering (assign) and the fractional algebra
        // (ShardScales::shrink) describe the same partition: at exact
        // binary splits the element counts agree exactly.
        use crate::scales::ShardScales;
        let layer = fc_layer(64, 32, 16);
        for t in PartitionType::ALL {
            let plan = LayerPlan::new(t, Ratio::EQUAL);
            let (a, _) = assign(&layer, plan);
            let scales = ShardScales::full().shrink(t, 0.5);
            assert_eq!(
                a.f_in_elems as f64,
                layer.in_fmap().size() as f64 * scales.f_in,
                "{t} f_in"
            );
            assert_eq!(
                a.f_out_elems as f64,
                layer.out_fmap().size() as f64 * scales.f_out,
                "{t} f_out"
            );
            assert_eq!(
                a.weight_elems as f64,
                layer.weight().size() as f64 * scales.weight,
                "{t} weight"
            );
        }
    }

    #[test]
    fn flop_shares_sum_to_total() {
        for (batch, d_in, d_out) in [(1, 1, 1), (3, 7, 5), (16, 63, 17), (63, 2, 63)] {
            let layer = fc_layer(batch, d_in, d_out);
            for &ptype in &PartitionType::ALL {
                for step in 0..=16 {
                    let alpha = f64::from(step) / 16.0;
                    let plan = LayerPlan::new(ptype, Ratio::new(alpha).unwrap());
                    let (a, b) = assign(&layer, plan);
                    // Shares of the partitioned dim sum exactly.
                    assert_eq!(a.dim_share + b.dim_share, a.dim_len);
                    // In the non-psum phases the output is sliced, so group
                    // FLOPs sum exactly to the full count. In the psum phase
                    // each group runs a partial reduction; the two partials
                    // sum to the full count minus one addition per output
                    // element (performed as part of the psum combination) —
                    // and less when a group's share is zero (it contributes
                    // nothing at all).
                    let psum_phase = ptype.psum_phase();
                    for (phase, full, got) in [
                        (
                            crate::Phase::Forward,
                            layer.forward_flops(),
                            a.forward_flops + b.forward_flops,
                        ),
                        (
                            crate::Phase::Backward,
                            layer.backward_flops(),
                            a.backward_flops + b.backward_flops,
                        ),
                        (
                            crate::Phase::Gradient,
                            layer.gradient_flops(),
                            a.gradient_flops + b.gradient_flops,
                        ),
                    ] {
                        if phase == psum_phase {
                            assert!(got <= full, "{phase}: {got} > {full}");
                            if a.dim_share > 0 && b.dim_share > 0 {
                                let out_elems = full
                                    / (2 * match ptype {
                                        PartitionType::TypeI => layer.gradient_reduction(),
                                        PartitionType::TypeII => layer.forward_reduction(),
                                        PartitionType::TypeIII => layer.backward_reduction(),
                                    } - 1);
                                assert_eq!(got, full - out_elems);
                            }
                        } else {
                            assert_eq!(got, full, "{phase}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn psum_volume_is_ratio_independent() {
        // Table 4: "intra-layer communication cost is not dependable
        // on the partitioning ratio α".
        let layer = fc_layer(32, 16, 24);
        for &ptype in &PartitionType::ALL {
            for step in 0..=32 {
                let alpha = f64::from(step) / 32.0;
                let (a, _) = assign(&layer, LayerPlan::new(ptype, Ratio::new(alpha).unwrap()));
                let (c, _) = assign(&layer, LayerPlan::new(ptype, Ratio::EQUAL));
                assert_eq!(a.psum_elems, c.psum_elems);
            }
        }
    }
}
