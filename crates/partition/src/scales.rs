use crate::ptype::PartitionType;

/// Scale factors a hierarchy level applies to a layer's tensors and
/// arithmetic: the product of the ancestors' partition shares, kept
/// separate per tensor because replication stops a tensor from shrinking
/// (e.g. `W_l` never shrinks under Type-I).
///
/// The recursive partitioning of §5.1 applies the layer-wise search
/// again *inside* each group; the inner search must see the shrunken
/// shard, which these factors describe.
///
/// # Example
///
/// ```
/// use accpar_partition::{PartitionType, ShardScales};
///
/// let shard = ShardScales::full().shrink(PartitionType::TypeI, 0.25);
/// assert_eq!(shard.f_in, 0.25);
/// assert_eq!(shard.weight, 1.0); // Type-I replicates the kernel
/// assert_eq!(shard.flops, 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardScales {
    /// Share of the input feature map `F_l` / error `E_l`.
    pub f_in: f64,
    /// Share of the output feature map `F_{l+1}` / error `E_{l+1}`.
    pub f_out: f64,
    /// Share of the kernel `W_l` / gradient `ΔW_l`.
    pub weight: f64,
    /// Share of the arithmetic work.
    pub flops: f64,
}

impl ShardScales {
    /// The unpartitioned whole.
    #[must_use]
    pub const fn full() -> Self {
        Self {
            f_in: 1.0,
            f_out: 1.0,
            weight: 1.0,
            flops: 1.0,
        }
    }

    /// The scales a child group inherits when its parent partitions this
    /// shard with type `ptype`, the child receiving `share` of the
    /// partitioned dimension.
    #[must_use]
    pub fn shrink(self, ptype: PartitionType, share: f64) -> Self {
        match ptype {
            PartitionType::TypeI => Self {
                f_in: self.f_in * share,
                f_out: self.f_out * share,
                weight: self.weight,
                flops: self.flops * share,
            },
            PartitionType::TypeII => Self {
                f_in: self.f_in * share,
                f_out: self.f_out,
                weight: self.weight * share,
                flops: self.flops * share,
            },
            PartitionType::TypeIII => Self {
                f_in: self.f_in,
                f_out: self.f_out * share,
                weight: self.weight * share,
                flops: self.flops * share,
            },
        }
    }

    /// The shard share of the tensor whose partial sums the given type
    /// exchanges (Table 4's tensor).
    #[must_use]
    pub const fn psum_scale(&self, ptype: PartitionType) -> f64 {
        match ptype {
            PartitionType::TypeI => self.weight,
            PartitionType::TypeII => self.f_out,
            PartitionType::TypeIII => self.f_in,
        }
    }
}

impl Default for ShardScales {
    fn default() -> Self {
        Self::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_is_identity() {
        let s = ShardScales::full();
        assert_eq!(s.f_in, 1.0);
        assert_eq!(s.psum_scale(PartitionType::TypeI), 1.0);
        assert_eq!(ShardScales::default(), s);
    }

    #[test]
    fn replicated_tensors_do_not_shrink() {
        let s = ShardScales::full();
        assert_eq!(s.shrink(PartitionType::TypeI, 0.5).weight, 1.0);
        assert_eq!(s.shrink(PartitionType::TypeII, 0.5).f_out, 1.0);
        assert_eq!(s.shrink(PartitionType::TypeIII, 0.5).f_in, 1.0);
    }

    #[test]
    fn psum_scale_selects_the_right_tensor() {
        let s = ShardScales {
            f_in: 0.2,
            f_out: 0.4,
            weight: 0.6,
            flops: 0.1,
        };
        assert_eq!(s.psum_scale(PartitionType::TypeI), 0.6);
        assert_eq!(s.psum_scale(PartitionType::TypeII), 0.4);
        assert_eq!(s.psum_scale(PartitionType::TypeIII), 0.2);
    }

    #[test]
    fn sibling_flop_shares_sum_to_parent() {
        for &t in &PartitionType::ALL {
            for step in 0..=20 {
                let alpha = f64::from(step) / 20.0;
                for parent_flops in [0.01, 0.125, 0.5, 0.99] {
                    let parent = ShardScales {
                        f_in: 1.0,
                        f_out: 1.0,
                        weight: 1.0,
                        flops: parent_flops,
                    };
                    let a = parent.shrink(t, alpha);
                    let b = parent.shrink(t, 1.0 - alpha);
                    assert!((a.flops + b.flops - parent.flops).abs() < 1e-12);
                }
            }
        }
    }
}
