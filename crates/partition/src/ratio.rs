use std::fmt;

/// A partition ratio `α ∈ [0, 1]`: the fraction of work (and of the
/// partitioned dimension) assigned to the *first* accelerator group; the
/// sibling group receives `β = 1 − α` (§5.3).
///
/// Unlike HyPar, which "always partitions the tensors equally", AccPar
/// chooses `α` to balance the heterogeneous groups' computation and
/// communication costs.
///
/// # Example
///
/// ```
/// use accpar_partition::Ratio;
///
/// let alpha = Ratio::new(0.75)?;
/// assert_eq!(alpha.complement().value(), 0.25);
/// assert!(!alpha.is_balanced());
/// assert!(Ratio::EQUAL.is_balanced());
/// # Ok::<(), accpar_partition::RatioError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Ratio(f64);

/// Error returned for a ratio outside `[0, 1]` or non-finite.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioError(f64);

impl fmt::Display for RatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "partition ratio must be in [0, 1], got {}", self.0)
    }
}

impl std::error::Error for RatioError {}

impl Ratio {
    /// The equal split used by OWT and HyPar.
    pub const EQUAL: Ratio = Ratio(0.5);

    /// Creates a ratio, validating the range.
    ///
    /// # Errors
    ///
    /// Returns [`RatioError`] for values outside `[0, 1]` or non-finite.
    pub fn new(alpha: f64) -> Result<Self, RatioError> {
        if alpha.is_finite() && (0.0..=1.0).contains(&alpha) {
            Ok(Self(alpha))
        } else {
            Err(RatioError(alpha))
        }
    }

    /// Creates a ratio, clamping to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics on NaN.
    #[must_use]
    pub fn clamped(alpha: f64) -> Self {
        assert!(!alpha.is_nan(), "partition ratio must not be NaN");
        Self(alpha.clamp(0.0, 1.0))
    }

    /// The value `α`.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// The sibling's ratio `β = 1 − α`.
    #[must_use]
    pub fn complement(self) -> Self {
        Self(1.0 - self.0)
    }

    /// Whether this is the equal split (within floating-point tolerance).
    #[must_use]
    pub fn is_balanced(self) -> bool {
        (self.0 - 0.5).abs() < 1e-12
    }

    /// Whether one side receives (essentially) all the work.
    #[must_use]
    pub fn is_degenerate(self) -> bool {
        self.0 < 1e-12 || self.0 > 1.0 - 1e-12
    }
}

impl Default for Ratio {
    fn default() -> Self {
        Self::EQUAL
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl From<Ratio> for f64 {
    fn from(r: Ratio) -> f64 {
        r.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Ratio::new(0.0).is_ok());
        assert!(Ratio::new(1.0).is_ok());
        assert!(Ratio::new(-0.1).is_err());
        assert!(Ratio::new(1.1).is_err());
        assert!(Ratio::new(f64::NAN).is_err());
        assert!(Ratio::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamping() {
        assert_eq!(Ratio::clamped(1.5).value(), 1.0);
        assert_eq!(Ratio::clamped(-0.5).value(), 0.0);
        assert_eq!(Ratio::clamped(0.25).value(), 0.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn clamping_rejects_nan() {
        let _ = Ratio::clamped(f64::NAN);
    }

    #[test]
    fn predicates() {
        assert!(Ratio::EQUAL.is_balanced());
        assert!(Ratio::new(1.0).unwrap().is_degenerate());
        assert!(Ratio::new(0.0).unwrap().is_degenerate());
        assert!(!Ratio::new(0.3).unwrap().is_degenerate());
        assert_eq!(Ratio::default(), Ratio::EQUAL);
    }

    #[test]
    fn complement_is_involutive() {
        for step in 0..=1000 {
            let alpha = f64::from(step) / 1000.0;
            let r = Ratio::new(alpha).unwrap();
            assert!((r.complement().complement().value() - alpha).abs() < 1e-15);
            assert!((r.value() + r.complement().value() - 1.0).abs() < 1e-15);
        }
    }
}
