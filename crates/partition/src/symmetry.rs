//! Table 3 of the paper: the *rotational symmetry* of the three tensor
//! multiplications.
//!
//! Each of the three training computations is a product of two of the
//! three tensor roles (feature map, error, kernel), and each has exactly
//! one dimension whose partitioning forces a partial-sum combination —
//! the dimension shared by both right-hand-side operands but absent from
//! the left-hand side. Rotating through the three multiplications rotates
//! the partition dimension through `D_{i,l} → D_{o,l} → B`, which is the
//! completeness argument of §3.4 in executable form.

use crate::ptype::{PartitionType, Phase};
use accpar_tensor::PartitionDim;

/// Symbolic dimensions of the three matrices of a phase, in the paper's
/// `(rows, cols)` convention for FC layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseShapes {
    /// Left-hand side (the produced tensor).
    pub lhs: (PartitionDim, PartitionDim),
    /// First right-hand operand.
    pub rhs_a: (PartitionDim, PartitionDim),
    /// Second right-hand operand.
    pub rhs_b: (PartitionDim, PartitionDim),
}

/// The row of Table 3 for a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymmetryRow {
    /// Which multiplication this row describes.
    pub phase: Phase,
    /// Shapes of the three matrices.
    pub shapes: PhaseShapes,
    /// The dimension whose partitioning requires partial sums.
    pub partition_dim: PartitionDim,
    /// Shape of the partial-sum tensor (equals the LHS shape).
    pub psum_shape: (PartitionDim, PartitionDim),
    /// The basic type for which this phase is the partial-sum phase.
    pub basic_type: PartitionType,
}

use PartitionDim::{Batch as B, Input as Di, Output as Do};

/// Table 3, row by row.
#[must_use]
pub fn table3() -> [SymmetryRow; 3] {
    [
        // F_{l+1} = F_l × W_l : (B, D_o) ← (B, D_i) × (D_i, D_o)
        SymmetryRow {
            phase: Phase::Forward,
            shapes: PhaseShapes {
                lhs: (B, Do),
                rhs_a: (B, Di),
                rhs_b: (Di, Do),
            },
            partition_dim: Di,
            psum_shape: (B, Do),
            basic_type: PartitionType::TypeII,
        },
        // E_l = E_{l+1} × W_lᵀ : (B, D_i) ← (B, D_o) × (D_o, D_i)
        SymmetryRow {
            phase: Phase::Backward,
            shapes: PhaseShapes {
                lhs: (B, Di),
                rhs_a: (B, Do),
                rhs_b: (Do, Di),
            },
            partition_dim: Do,
            psum_shape: (B, Di),
            basic_type: PartitionType::TypeIII,
        },
        // ΔW_l = F_lᵀ × E_{l+1} : (D_i, D_o) ← (D_i, B) × (B, D_o)
        SymmetryRow {
            phase: Phase::Gradient,
            shapes: PhaseShapes {
                lhs: (Di, Do),
                rhs_a: (Di, B),
                rhs_b: (B, Do),
            },
            partition_dim: B,
            psum_shape: (Di, Do),
            basic_type: PartitionType::TypeI,
        },
    ]
}

/// The *contracted* dimension of a phase: present in both RHS operands,
/// absent from the LHS. Partitioning it yields partial sums.
#[must_use]
pub fn contracted_dim(shapes: &PhaseShapes) -> Option<PartitionDim> {
    let in_shape = |d: PartitionDim, s: (PartitionDim, PartitionDim)| s.0 == d || s.1 == d;
    [B, Di, Do].into_iter().find(|&d| {
        in_shape(d, shapes.rhs_a) && in_shape(d, shapes.rhs_b) && !in_shape(d, shapes.lhs)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_dim_is_the_contracted_dim() {
        for row in table3() {
            assert_eq!(
                contracted_dim(&row.shapes),
                Some(row.partition_dim),
                "{:?}",
                row.phase
            );
        }
    }

    #[test]
    fn psum_shape_equals_lhs_shape() {
        for row in table3() {
            assert_eq!(row.psum_shape, row.shapes.lhs, "{:?}", row.phase);
        }
    }

    #[test]
    fn basic_type_matches_psum_phase() {
        // The type whose psum phase is this row's phase must be the row's
        // basic type — Table 3 and Table 4 agree.
        for row in table3() {
            assert_eq!(row.basic_type.psum_phase(), row.phase);
            assert_eq!(row.basic_type.dim(), row.partition_dim);
        }
    }

    #[test]
    fn rotational_symmetry() {
        // Rotating phases (forward → backward → gradient) rotates the
        // partition dimension (D_i → D_o → B) and the basic type
        // (II → III → I): each column of Table 3 is a 3-cycle.
        let rows = table3();
        let dims: Vec<_> = rows.iter().map(|r| r.partition_dim).collect();
        assert_eq!(dims, [Di, Do, B]);
        let types: Vec<_> = rows.iter().map(|r| r.basic_type).collect();
        assert_eq!(
            types,
            [PartitionType::TypeII, PartitionType::TypeIII, PartitionType::TypeI]
        );
        // All three dims and all three types appear exactly once.
        for d in [B, Di, Do] {
            assert_eq!(dims.iter().filter(|&&x| x == d).count(), 1);
        }
    }

    #[test]
    fn every_dimension_appears_in_exactly_two_rhs_operands_per_phase() {
        // Each phase contracts one dim and passes the other two through.
        for row in table3() {
            let all = [
                row.shapes.rhs_a.0,
                row.shapes.rhs_a.1,
                row.shapes.rhs_b.0,
                row.shapes.rhs_b.1,
            ];
            for d in [B, Di, Do] {
                let count = all.iter().filter(|&&x| x == d).count();
                if d == row.partition_dim {
                    assert_eq!(count, 2, "contracted dim appears twice");
                } else {
                    assert_eq!(count, 1, "free dims appear once");
                }
            }
        }
    }
}
