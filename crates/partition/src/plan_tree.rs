use crate::plan::{HierPlan, NetworkPlan};
use crate::ptype::PartitionType;
use std::fmt;

/// A hierarchical plan shaped like the group tree it partitions: each
/// node carries the [`NetworkPlan`] of *its* bisection, and — unless it is
/// at the bottom of the hierarchy — two children for the sub-plans inside
/// each half.
///
/// On a heterogeneous array the two halves of a cut have different
/// capabilities, so the recursive search (§5.1) may choose *different*
/// plans inside them; a flat per-level [`HierPlan`] cannot express that,
/// a `PlanTree` can. A uniform tree (same plan for every node of a level)
/// is available via [`PlanTree::uniform`] and from
/// [`HierPlan::to_tree`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanTree {
    plan: NetworkPlan,
    children: Option<Box<(PlanTree, PlanTree)>>,
}

impl PlanTree {
    /// A single-level tree (leaf bisection).
    #[must_use]
    pub fn leaf(plan: NetworkPlan) -> Self {
        Self {
            plan,
            children: None,
        }
    }

    /// A bisection with sub-plans inside each half.
    #[must_use]
    pub fn branch(plan: NetworkPlan, left: PlanTree, right: PlanTree) -> Self {
        Self {
            plan,
            children: Some(Box::new((left, right))),
        }
    }

    /// Builds a uniform tree: the same plan for every node of each level.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    #[must_use]
    pub fn uniform(levels: &[NetworkPlan]) -> Self {
        assert!(!levels.is_empty(), "a plan tree needs at least one level");
        let plan = levels[0].clone();
        if levels.len() == 1 {
            Self::leaf(plan)
        } else {
            let child = Self::uniform(&levels[1..]);
            Self::branch(plan, child.clone(), child)
        }
    }

    /// This node's bisection plan.
    #[must_use]
    pub const fn plan(&self) -> &NetworkPlan {
        &self.plan
    }

    /// The sub-plans inside each half, if any.
    #[must_use]
    pub fn children(&self) -> Option<(&PlanTree, &PlanTree)> {
        self.children.as_deref().map(|c| (&c.0, &c.1))
    }

    /// Number of bisection levels (1 for a leaf).
    #[must_use]
    pub fn depth(&self) -> usize {
        match self.children() {
            None => 1,
            Some((l, r)) => 1 + l.depth().max(r.depth()),
        }
    }

    /// Total count of a type across all nodes and layers — Figure 7's
    /// aggregate statistic.
    #[must_use]
    pub fn count(&self, ptype: PartitionType) -> usize {
        let own = self.plan.count(ptype);
        match self.children() {
            None => own,
            Some((l, r)) => own + l.count(ptype) + r.count(ptype),
        }
    }

    /// Rebuilds the tree with every node's entry for every layer passed
    /// through `f` (which receives the weighted-layer index and the
    /// current entry). Used by memory-feasibility repair to flip layers
    /// to model partitioning across all levels at once.
    #[must_use]
    pub fn map_layers(&self, f: &impl Fn(usize, crate::LayerPlan) -> crate::LayerPlan) -> PlanTree {
        let plan = crate::NetworkPlan::new(
            self.plan
                .layers()
                .iter()
                .enumerate()
                .map(|(l, &entry)| f(l, entry))
                .collect(),
        );
        match self.children() {
            None => PlanTree::leaf(plan),
            Some((a, b)) => PlanTree::branch(plan, a.map_layers(f), b.map_layers(f)),
        }
    }

    /// Per-layer type counts across all nodes: `counts[layer][type index
    /// in `PartitionType::ALL`]` — the data behind Figure 7.
    #[must_use]
    pub fn per_layer_type_counts(&self) -> Vec<[usize; 3]> {
        let mut counts = vec![[0usize; 3]; self.plan.len()];
        self.accumulate(&mut counts);
        counts
    }

    fn accumulate(&self, counts: &mut [[usize; 3]]) {
        for (l, entry) in self.plan.layers().iter().enumerate() {
            let t_idx = PartitionType::ALL
                .iter()
                .position(|&t| t == entry.ptype)
                .expect("type in ALL");
            counts[l][t_idx] += 1;
        }
        if let Some((a, b)) = self.children() {
            a.accumulate(counts);
            b.accumulate(counts);
        }
    }
}

impl HierPlan {
    /// Expands this flat per-level plan into a uniform [`PlanTree`].
    ///
    /// # Panics
    ///
    /// Panics if the plan has no levels.
    #[must_use]
    pub fn to_tree(&self) -> PlanTree {
        PlanTree::uniform(self.levels())
    }
}

impl fmt::Display for PlanTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn rec(node: &PlanTree, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(f, "{}{}", "  ".repeat(depth), node.plan().type_string())?;
            if let Some((l, r)) = node.children() {
                rec(l, depth + 1, f)?;
                rec(r, depth + 1, f)?;
            }
            Ok(())
        }
        rec(self, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::LayerPlan;
    use crate::ratio::Ratio;

    fn plan(t: PartitionType, n: usize) -> NetworkPlan {
        NetworkPlan::uniform(n, LayerPlan::new(t, Ratio::EQUAL))
    }

    #[test]
    fn uniform_tree_shape() {
        let tree = PlanTree::uniform(&vec![plan(PartitionType::TypeI, 2); 3]);
        assert_eq!(tree.depth(), 3);
        // 1 + 2 + 4 nodes, 2 layers each.
        assert_eq!(tree.count(PartitionType::TypeI), 14);
    }

    #[test]
    fn heterogeneous_children_allowed() {
        let tree = PlanTree::branch(
            plan(PartitionType::TypeI, 1),
            PlanTree::leaf(plan(PartitionType::TypeII, 1)),
            PlanTree::leaf(plan(PartitionType::TypeIII, 1)),
        );
        assert_eq!(tree.count(PartitionType::TypeII), 1);
        assert_eq!(tree.count(PartitionType::TypeIII), 1);
        assert_eq!(tree.depth(), 2);
    }

    #[test]
    fn hier_plan_round_trips() {
        let hier = HierPlan::new(vec![plan(PartitionType::TypeI, 2), plan(PartitionType::TypeII, 2)]);
        let tree = hier.to_tree();
        assert_eq!(tree.depth(), 2);
        assert_eq!(tree.count(PartitionType::TypeI), 2);
        // Level 1 appears in both halves.
        assert_eq!(tree.count(PartitionType::TypeII), 4);
    }

    #[test]
    fn per_layer_counts() {
        let tree = PlanTree::branch(
            NetworkPlan::new(vec![
                LayerPlan::new(PartitionType::TypeI, Ratio::EQUAL),
                LayerPlan::new(PartitionType::TypeII, Ratio::EQUAL),
            ]),
            PlanTree::leaf(plan(PartitionType::TypeIII, 2)),
            PlanTree::leaf(plan(PartitionType::TypeIII, 2)),
        );
        let counts = tree.per_layer_type_counts();
        assert_eq!(counts[0], [1, 0, 2]);
        assert_eq!(counts[1], [0, 1, 2]);
    }

    #[test]
    fn map_layers_flips_types_everywhere() {
        let tree = PlanTree::uniform(&vec![plan(PartitionType::TypeI, 3); 2]);
        let flipped = tree.map_layers(&|l, entry| {
            if l == 1 {
                LayerPlan::new(PartitionType::TypeII, entry.ratio)
            } else {
                entry
            }
        });
        // 3 nodes x 1 flipped layer.
        assert_eq!(flipped.count(PartitionType::TypeII), 3);
        assert_eq!(flipped.count(PartitionType::TypeI), 6);
        assert_eq!(flipped.depth(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn uniform_rejects_empty() {
        let _ = PlanTree::uniform(&[]);
    }
}
