use accpar_tensor::PartitionDim;
use std::fmt;

/// One of the three tensor computation phases of DNN training (§2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `F_{l+1} = f(F_l × W_l)`.
    Forward,
    /// `E_l = (E_{l+1} × W_lᵀ) ⊙ f'(F_l)`.
    Backward,
    /// `ΔW_l = F_lᵀ × E_{l+1}`.
    Gradient,
}

impl Phase {
    /// All three phases in execution order of the forward/backward sweep.
    pub const ALL: [Phase; 3] = [Phase::Forward, Phase::Backward, Phase::Gradient];
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Phase::Forward => "forward",
            Phase::Backward => "backward",
            Phase::Gradient => "gradient",
        };
        f.write_str(s)
    }
}

/// One of the three basic tensor partition types of §3.2.
///
/// Each type partitions exactly one of the three dimensions appearing in
/// the training computations; the other tensors are either split
/// compatibly or replicated. Exactly one phase per type requires a
/// partial-sum exchange — the *intra-layer communication* of §4.1.1.
///
/// # Example
///
/// ```
/// use accpar_partition::{PartitionType, Phase};
/// use accpar_tensor::PartitionDim;
///
/// assert_eq!(PartitionType::TypeI.dim(), PartitionDim::Batch);
/// assert_eq!(PartitionType::TypeI.psum_phase(), Phase::Gradient);
/// // Data parallelism is Type-I; HyPar's "model parallelism" is Type-II;
/// // Type-III is the configuration overlooked by prior work (§3.2.3).
/// assert_eq!(PartitionType::ALL.len(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PartitionType {
    /// Partition the batch dimension `B` — data parallelism. `W_l` is
    /// replicated; the gradient phase needs a partial-sum exchange.
    TypeI,
    /// Partition the input dimension `D_{i,l}` — (one flavor of) model
    /// parallelism. `E_{l+1}` is replicated; the forward phase needs a
    /// partial-sum exchange.
    TypeII,
    /// Partition the output dimension `D_{o,l}` — the configuration
    /// overlooked by OWT and HyPar. `F_l` is replicated; the backward
    /// phase needs a partial-sum exchange.
    TypeIII,
}

impl PartitionType {
    /// The three types in enumeration order (the DP's state set `𝒯`).
    pub const ALL: [PartitionType; 3] =
        [PartitionType::TypeI, PartitionType::TypeII, PartitionType::TypeIII];

    /// [`ALL`](Self::ALL) as a `'static` slice, so search configurations
    /// can borrow the full state set instead of allocating a copy per
    /// construction.
    pub const ALL_SLICE: &'static [PartitionType] = &Self::ALL;

    /// The dimension this type partitions.
    #[must_use]
    pub const fn dim(self) -> PartitionDim {
        match self {
            PartitionType::TypeI => PartitionDim::Batch,
            PartitionType::TypeII => PartitionDim::Input,
            PartitionType::TypeIII => PartitionDim::Output,
        }
    }

    /// The phase whose results must be combined with an element-wise
    /// addition across accelerators (Table 4's source of intra-layer
    /// communication).
    #[must_use]
    pub const fn psum_phase(self) -> Phase {
        match self {
            PartitionType::TypeI => Phase::Gradient,
            PartitionType::TypeII => Phase::Forward,
            PartitionType::TypeIII => Phase::Backward,
        }
    }

    /// Whether this type replicates the kernel `W_l` (only Type-I does).
    #[must_use]
    pub const fn replicates_weight(self) -> bool {
        matches!(self, PartitionType::TypeI)
    }

    /// Whether this type replicates the input feature map `F_l` (only
    /// Type-III does).
    #[must_use]
    pub const fn replicates_input(self) -> bool {
        matches!(self, PartitionType::TypeIII)
    }

    /// Whether this type partitions the model (kernel) rather than the
    /// data — the distinction §6.2 uses to explain VGG-vs-ResNet
    /// behaviour.
    #[must_use]
    pub const fn partitions_model(self) -> bool {
        !matches!(self, PartitionType::TypeI)
    }

    /// A one-character code, as used in Figure 7's per-layer rendering.
    #[must_use]
    pub const fn code(self) -> char {
        match self {
            PartitionType::TypeI => 'I',
            PartitionType::TypeII => '2',
            PartitionType::TypeIII => '3',
        }
    }
}

impl fmt::Display for PartitionType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PartitionType::TypeI => "Type-I",
            PartitionType::TypeII => "Type-II",
            PartitionType::TypeIII => "Type-III",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_type_partitions_a_distinct_dimension() {
        let dims: Vec<_> = PartitionType::ALL.iter().map(|t| t.dim()).collect();
        assert_eq!(
            dims,
            [PartitionDim::Batch, PartitionDim::Input, PartitionDim::Output]
        );
    }

    #[test]
    fn each_type_has_a_distinct_psum_phase() {
        let phases: Vec<_> = PartitionType::ALL.iter().map(|t| t.psum_phase()).collect();
        assert_eq!(phases, [Phase::Gradient, Phase::Forward, Phase::Backward]);
    }

    #[test]
    fn replication_flags() {
        assert!(PartitionType::TypeI.replicates_weight());
        assert!(!PartitionType::TypeII.replicates_weight());
        assert!(PartitionType::TypeIII.replicates_input());
        assert!(!PartitionType::TypeI.replicates_input());
        assert!(!PartitionType::TypeI.partitions_model());
        assert!(PartitionType::TypeII.partitions_model());
        assert!(PartitionType::TypeIII.partitions_model());
    }

    #[test]
    fn display_and_codes() {
        assert_eq!(PartitionType::TypeI.to_string(), "Type-I");
        assert_eq!(PartitionType::TypeIII.to_string(), "Type-III");
        assert_eq!(Phase::Forward.to_string(), "forward");
        let codes: String = PartitionType::ALL.iter().map(|t| t.code()).collect();
        assert_eq!(codes, "I23");
    }
}
