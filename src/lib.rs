//! # AccPar
//!
//! A from-scratch Rust reproduction of *AccPar: Tensor Partitioning for
//! Heterogeneous Deep Learning Accelerators* (Song et al., HPCA 2020).
//!
//! AccPar decides, for every weighted layer of a DNN and every level of a
//! hierarchically-bisected accelerator array, which of three basic tensor
//! partition types to use and what fraction of the work each accelerator
//! group receives — minimizing a cost model that accounts for both
//! computation and communication on *heterogeneous* hardware.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — shape algebra, the `A(·)` size function, data formats;
//! * [`dnn`] — layer graphs, shape propagation and the model zoo
//!   (LeNet, AlexNet, VGG-11/13/16/19, ResNet-18/34/50);
//! * [`hw`] — accelerator specs (TPU-v2 / TPU-v3), arrays and
//!   hierarchical group trees;
//! * [`partition`] — the three basic partition types, ratios and plans;
//! * [`cost`] — the communication + computation cost model (Tables 4–6)
//!   and the partition-ratio solver (Eq. 10);
//! * [`sim`] — a trace-based discrete-event performance simulator for
//!   accelerator arrays;
//! * [`core`] — the layer-wise dynamic-programming search (Eq. 9),
//!   multi-path handling, hierarchical planning, the DP / OWT / HyPar
//!   baselines, and the live-replanning [`prelude::Supervisor`] that
//!   reacts to hardware health events;
//! * [`exec`] — the executable semantics oracle: numerically runs
//!   partitioned training on virtual devices and verifies both the
//!   results and the communication volumes against the cost model;
//! * [`runtime`] — the std-only thread pool behind parallel planning,
//!   plus the [`prelude::Budget`] / [`prelude::CancelToken`] vocabulary
//!   for deadlines, node budgets and cooperative cancellation;
//! * [`obs`] — structured tracing, metrics and profiling hooks
//!   ([`obs::Obs`], [`obs::Subscriber`], [`obs::Metrics`]).
//!
//! Errors from any layer unify into [`AccParError`], and a planner is
//! configured through [`prelude::PlannerBuilder`]
//! (`Planner::builder(..)`), which validates every knob up front.
//!
//! # Quickstart
//!
//! ```
//! use accpar::prelude::*;
//!
//! // A heterogeneous array: 4 TPU-v2 and 4 TPU-v3 boards.
//! let array = AcceleratorArray::heterogeneous_tpu(4, 4);
//! let network = zoo::alexnet(512)?;
//!
//! // Search the complete partition space with the full cost model.
//! let planner = Planner::builder(&network, &array).build()?;
//! let accpar = planner.plan(Strategy::AccPar)?;
//! let dp = planner.plan(Strategy::DataParallel)?;
//!
//! // The complete, heterogeneity-aware search wins clearly on AlexNet.
//! assert!(accpar.modeled_cost() < dp.modeled_cost());
//! # Ok::<(), accpar::AccParError>(())
//! ```
//!
//! # Observability
//!
//! Attach a [`Subscriber`](obs::Subscriber) to watch the search decide
//! (one `plan.decision` event per plan-tree node and layer) and to
//! collect metrics — cache hit rates, per-type cost evaluations,
//! per-phase simulator timings:
//!
//! ```
//! use accpar::prelude::*;
//! use std::sync::Arc;
//!
//! let array = AcceleratorArray::heterogeneous_tpu(2, 2);
//! let network = zoo::lenet(128)?;
//!
//! let collector = Arc::new(Collector::new());
//! let planner = Planner::builder(&network, &array)
//!     .levels(2)
//!     .subscriber(Arc::clone(&collector))
//!     .build()?;
//! let planned = planner.run()?;
//!
//! // One decision event per (plan-tree node, weighted layer).
//! let decisions = collector.events_named("plan.decision");
//! assert_eq!(decisions.len(), 3 * planned.plan().plan().len());
//! # Ok::<(), accpar::AccParError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use accpar_core as core;
pub use accpar_exec as exec;
pub use accpar_cost as cost;
pub use accpar_dnn as dnn;
pub use accpar_hw as hw;
pub use accpar_obs as obs;
pub use accpar_partition as partition;
pub use accpar_runtime as runtime;
pub use accpar_sim as sim;
pub use accpar_tensor as tensor;

mod error;

pub use error::AccParError;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use crate::error::AccParError;
    pub use accpar_core::{
        baselines, plan_many, replan, AnytimeReport, Budget, CacheOutcome, CacheStats, CancelToken,
        PartialPlan, PlanCache, PlanCacheStats, PlanError, PlanOutcome, PlanRequest, PlannedNetwork,
        Planner, PlannerBuilder, ReplanConfig, ReplanOutcome, RetryPolicy, SearchCache, ServeConfig,
        StopReason, Strategy, SuperviseAction, SuperviseConfig, SuperviseReport, Supervisor,
    };
    pub use accpar_cost::{CostConfig, CostModel, PairEnv, RatioSolver};
    pub use accpar_dnn::{zoo, Network, NetworkBuilder};
    pub use accpar_hw::{
        AcceleratorArray, AcceleratorSpec, FaultModel, GroupTree, HealthEvent, HealthEventKind,
        HealthSchedule,
    };
    pub use accpar_obs::{
        Collector, JsonLines, Metrics, MetricsSnapshot, NoopSubscriber, Obs, ScopedTimer,
        StderrSubscriber, Subscriber,
    };
    pub use accpar_partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, PlanTree, Ratio};
    pub use accpar_sim::{
        simulate, simulate_des, simulate_des_in, DesArena, SimConfig, SimReport, Simulator,
    };
    pub use accpar_tensor::{ConvGeometry, DataFormat, FeatureShape, KernelShape};
}
