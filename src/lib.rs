//! # AccPar
//!
//! A from-scratch Rust reproduction of *AccPar: Tensor Partitioning for
//! Heterogeneous Deep Learning Accelerators* (Song et al., HPCA 2020).
//!
//! AccPar decides, for every weighted layer of a DNN and every level of a
//! hierarchically-bisected accelerator array, which of three basic tensor
//! partition types to use and what fraction of the work each accelerator
//! group receives — minimizing a cost model that accounts for both
//! computation and communication on *heterogeneous* hardware.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`tensor`] — shape algebra, the `A(·)` size function, data formats;
//! * [`dnn`] — layer graphs, shape propagation and the model zoo
//!   (LeNet, AlexNet, VGG-11/13/16/19, ResNet-18/34/50);
//! * [`hw`] — accelerator specs (TPU-v2 / TPU-v3), arrays and
//!   hierarchical group trees;
//! * [`partition`] — the three basic partition types, ratios and plans;
//! * [`cost`] — the communication + computation cost model (Tables 4–6)
//!   and the partition-ratio solver (Eq. 10);
//! * [`sim`] — a trace-based discrete-event performance simulator for
//!   accelerator arrays;
//! * [`core`] — the layer-wise dynamic-programming search (Eq. 9),
//!   multi-path handling, hierarchical planning and the DP / OWT / HyPar
//!   baselines;
//! * [`exec`] — the executable semantics oracle: numerically runs
//!   partitioned training on virtual devices and verifies both the
//!   results and the communication volumes against the cost model.
//!
//! # Quickstart
//!
//! ```
//! use accpar::prelude::*;
//!
//! // A heterogeneous array: 4 TPU-v2 and 4 TPU-v3 boards.
//! let array = AcceleratorArray::heterogeneous_tpu(4, 4);
//! let network = zoo::alexnet(512)?;
//!
//! // Search the complete partition space with the full cost model.
//! let planner = Planner::new(&network, &array);
//! let accpar = planner.plan(Strategy::AccPar)?;
//! let dp = planner.plan(Strategy::DataParallel)?;
//!
//! // The complete, heterogeneity-aware search wins clearly on AlexNet.
//! assert!(accpar.modeled_cost() < dp.modeled_cost());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use accpar_core as core;
pub use accpar_exec as exec;
pub use accpar_cost as cost;
pub use accpar_dnn as dnn;
pub use accpar_hw as hw;
pub use accpar_partition as partition;
pub use accpar_sim as sim;
pub use accpar_tensor as tensor;

/// Convenient glob-import of the most commonly used items.
pub mod prelude {
    pub use accpar_core::{
        baselines, replan, PlanError, PlannedNetwork, Planner, ReplanConfig, ReplanOutcome,
        Strategy,
    };
    pub use accpar_cost::{CostConfig, CostModel, PairEnv, RatioSolver};
    pub use accpar_dnn::{zoo, Network, NetworkBuilder};
    pub use accpar_hw::{AcceleratorArray, AcceleratorSpec, FaultModel, GroupTree};
    pub use accpar_partition::{HierPlan, LayerPlan, NetworkPlan, PartitionType, PlanTree, Ratio};
    pub use accpar_sim::{simulate_des_faulted, SimConfig, SimReport, Simulator};
    pub use accpar_tensor::{ConvGeometry, DataFormat, FeatureShape, KernelShape};
}
