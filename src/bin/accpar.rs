//! `accpar` — command-line planner and simulator.
//!
//! ```text
//! accpar models
//! accpar plan     --model vgg16 --batch 512 --v2 128 --v3 128 [--levels H]
//!                 [--strategy dp|owt|hypar|accpar|all] [--json]
//! accpar simulate --model resnet18 --batch 512 --v2 4 --v3 4
//!                 [--strategy accpar] [--optimizer sgd|momentum|adam]
//! accpar memory   --model vgg16 --batch 512 --v2 4 --v3 4
//!                 [--strategy accpar] [--optimizer adam]
//! accpar supervise --model alexnet --batch 256 --v2 2 --v3 2
//!                 [--seed N] [--events N]
//! ```

use accpar::prelude::*;
use accpar::sim::{memory_report, Optimizer};
use std::collections::HashMap;
use std::process::ExitCode;

struct Args {
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    fn parse(argv: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        let mut it = argv.iter().peekable();
        while let Some(arg) = it.next() {
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected positional argument `{arg}`"));
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    flags.insert(name.to_owned(), it.next().expect("peeked").clone());
                }
                _ => switches.push(name.to_owned()),
            }
        }
        Ok(Self { flags, switches })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    fn usize_or(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name} expects a positive integer, got `{v}`")),
        }
    }

    fn has(&self, switch: &str) -> bool {
        self.switches.iter().any(|s| s == switch)
    }
}

fn usage() -> &'static str {
    "usage:
  accpar models
  accpar plan     --model <name> [--batch N] [--v2 N] [--v3 N] [--levels H]
                  [--strategy dp|owt|hypar|accpar|all] [--json] [--explain]
                  [--deadline-ms N] [--max-nodes N] [--no-iso]
                  [--cache-dir PATH] [--cache-cap N] [--no-cache]
  accpar simulate --model <name> [--batch N] [--v2 N] [--v3 N] [--levels H]
                  [--strategy dp|owt|hypar|accpar] [--optimizer sgd|momentum|adam]
  accpar memory   --model <name> [--batch N] [--v2 N] [--v3 N] [--levels H]
                  [--strategy dp|owt|hypar|accpar] [--optimizer sgd|momentum|adam]
  accpar supervise --model <name> [--batch N] [--v2 N] [--v3 N] [--levels H]
                  [--seed N] [--events N]

defaults: --batch 512 --v2 4 --v3 4 --strategy accpar --cache-cap 256

supervise replays a seeded random hardware-health timeline (degrade /
fail / recover / bandwidth-jitter, --events of them) through the live
replanning supervisor and prints every debounced decision plus the
availability / MTTR summary; the same --seed reproduces the run
byte-for-byte

the plan cache: --cache-dir enables the crash-safe persistent plan
cache (hits are re-validated before serving; corrupt records are
quarantined, never served); --cache-cap alone enables a memory-only
cache; --no-cache disables caching entirely

--no-iso disables isomorphism collapse in the AccPar search (plans are
bit-identical either way; the switch exists to cross-check and to
measure the collapse speedup)"
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a [`PlanTree`] to a compact JSON object: per-node type
/// string, per-layer `{type, alpha}` entries, and recursive children.
fn plan_tree_json(tree: &PlanTree) -> String {
    let layers: Vec<String> = tree
        .plan()
        .layers()
        .iter()
        .map(|entry| {
            format!(
                "{{\"type\": \"{}\", \"alpha\": {}}}",
                entry.ptype,
                entry.ratio.value()
            )
        })
        .collect();
    let children = match tree.children() {
        None => String::from("null"),
        Some((l, r)) => format!("[{}, {}]", plan_tree_json(l), plan_tree_json(r)),
    };
    format!(
        "{{\"types\": \"{}\", \"layers\": [{}], \"children\": {}}}",
        tree.plan().type_string(),
        layers.join(", "),
        children
    )
}

fn parse_strategy(name: &str) -> Result<Strategy, String> {
    Ok(match name {
        "dp" => Strategy::DataParallel,
        "owt" => Strategy::Owt,
        "hypar" => Strategy::HyPar,
        "accpar" => Strategy::AccPar,
        other => return Err(format!("unknown strategy `{other}`")),
    })
}

fn parse_optimizer(name: &str) -> Result<Optimizer, String> {
    Ok(match name {
        "sgd" => Optimizer::Sgd,
        "momentum" => Optimizer::Momentum,
        "adam" => Optimizer::Adam,
        other => return Err(format!("unknown optimizer `{other}`")),
    })
}

struct Setup {
    network: Network,
    array: AcceleratorArray,
    levels: Option<usize>,
}

fn setup(args: &Args) -> Result<Setup, String> {
    let model = args.get("model").ok_or("--model is required")?;
    let batch = args.usize_or("batch", 512)?;
    let v2 = args.usize_or("v2", 4)?;
    let v3 = args.usize_or("v3", 4)?;
    if v2 + v3 == 0 {
        return Err("the array needs at least one board".into());
    }
    let network = zoo::by_name(model, batch).map_err(|e| e.to_string())?;
    let array = AcceleratorArray::heterogeneous_tpu(v2, v3);
    let levels = match args.get("levels") {
        None => None,
        Some(_) => Some(args.usize_or("levels", 0)?),
    };
    Ok(Setup {
        network,
        array,
        levels,
    })
}

fn builder<'a>(setup: &'a Setup) -> PlannerBuilder<'a> {
    let mut b = Planner::builder(&setup.network, &setup.array).sim_config(SimConfig::default());
    if let Some(levels) = setup.levels {
        b = b.levels(levels);
    }
    b
}

fn planner<'a>(setup: &'a Setup) -> Result<Planner<'a>, String> {
    builder(setup).build().map_err(|e| e.to_string())
}

fn cmd_models() -> Result<(), String> {
    println!("evaluation suite:");
    for name in zoo::EVALUATION_NAMES {
        let net = zoo::by_name(name, 1).map_err(|e| e.to_string())?;
        println!("  {name:<10} {}", net.stats());
    }
    println!("extensions:");
    for name in ["resnet101", "resnet152", "googlenet", "gpt2_xl", "deep48", "deep96"] {
        let net = zoo::by_name(name, 1).map_err(|e| e.to_string())?;
        println!("  {name:<10} {}", net.stats());
    }
    Ok(())
}

/// Parses an optional `--<name> N` flag as `u64`.
fn u64_flag(args: &Args, name: &str) -> Result<Option<u64>, String> {
    match args.get(name) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("--{name} expects a non-negative integer, got `{v}`")),
    }
}

/// Builds the plan cache requested by `--cache-dir` / `--cache-cap`,
/// or `None` when caching is off (`--no-cache`, or neither flag given).
/// A persistent cache that cannot reach its directory degrades to
/// memory-only inside [`PlanCache::open`] — never an error here.
fn cache_from_args(args: &Args) -> Result<Option<std::sync::Arc<PlanCache>>, String> {
    if args.has("no-cache") {
        return Ok(None);
    }
    let cap = args.usize_or("cache-cap", 256)?;
    if cap == 0 {
        return Err("--cache-cap must be at least 1 (or pass --no-cache)".into());
    }
    match args.get("cache-dir") {
        Some(dir) => Ok(Some(std::sync::Arc::new(PlanCache::open(
            std::path::Path::new(dir),
            cap,
            Obs::off(),
        )))),
        None if args.get("cache-cap").is_some() => {
            Ok(Some(std::sync::Arc::new(PlanCache::memory(cap))))
        }
        None => Ok(None),
    }
}

fn cmd_plan(args: &Args) -> Result<(), String> {
    let setup = setup(args)?;
    let mut b = builder(&setup);
    if let Some(ms) = u64_flag(args, "deadline-ms")? {
        b = b.deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(nodes) = u64_flag(args, "max-nodes")? {
        b = b.max_nodes(nodes);
    }
    if args.has("no-iso") {
        b = b.iso(false);
    }
    let cache = cache_from_args(args)?;
    if let Some(cache) = &cache {
        b = b.plan_cache(std::sync::Arc::clone(cache));
        if cache.persistent() {
            let report = cache.load_report();
            eprintln!(
                "cache: {} record(s) warm-loaded from {}{}",
                report.loaded,
                args.get("cache-dir").unwrap_or("?"),
                if report.quarantined > 0 {
                    format!(", {} quarantined", report.quarantined)
                } else {
                    String::new()
                }
            );
        }
    }
    let planner = b.build().map_err(|e| e.to_string())?;
    let strategies: Vec<Strategy> = match args.get("strategy").unwrap_or("accpar") {
        "all" => Strategy::ALL.to_vec(),
        name => vec![parse_strategy(name)?],
    };
    let mut dp_ms = None;
    for strategy in strategies {
        let outcome = planner.plan_outcome(strategy).map_err(|e| e.to_string())?;
        let stop_note = match &outcome {
            PlanOutcome::Complete(_) => String::new(),
            PlanOutcome::Partial(p) => format!(
                "   [partial: {:.0}% solved, stop: {}]",
                p.completeness() * 100.0,
                p.reason()
            ),
        };
        let completeness = outcome.completeness();
        let stop_json = match &outcome {
            PlanOutcome::Complete(_) => String::from("null"),
            PlanOutcome::Partial(p) => format!("\"{}\"", p.reason().label()),
        };
        let planned = outcome.into_planned();
        let ms = planned.modeled_cost() * 1e3;
        if args.has("json") {
            println!(
                "{{\n  \"network\": \"{}\",\n  \"strategy\": \"{}\",\n  \"levels\": {},\n  \"step_ms\": {},\n  \"completeness\": {},\n  \"stop\": {},\n  \"plan\": {}\n}}",
                json_escape(setup.network.name()),
                strategy,
                planned.plan().depth(),
                ms,
                completeness,
                stop_json,
                plan_tree_json(planned.plan()),
            );
        } else {
            let speedup = match dp_ms {
                Some(dp) => format!("  ({:.2}x vs DP)", dp / ms),
                None => String::new(),
            };
            if strategy == Strategy::DataParallel {
                dp_ms = Some(ms);
            }
            println!(
                "{:>6}: {ms:10.3} ms/step{speedup}   top-level {}{stop_note}",
                strategy.to_string(),
                planned.plan().plan().type_string()
            );
            if args.has("explain") {
                let view = setup.network.train_view().map_err(|e| e.to_string())?;
                let mut layers: Vec<_> = view.layers().collect();
                layers.sort_by_key(|l| l.index());
                let counts = planned.plan().per_layer_type_counts();
                println!("        {:<14} {:<18} {:>7} {:>8} {:>9}", "layer", "top-level", "I", "II", "III");
                for (layer, (entry, c)) in layers
                    .iter()
                    .zip(planned.plan().plan().layers().iter().zip(&counts))
                {
                    println!(
                        "        {:<14} {:<18} {:>7} {:>8} {:>9}",
                        layer.name(),
                        entry.to_string(),
                        c[0],
                        c[1],
                        c[2]
                    );
                }
            }
        }
    }
    if let Some(cache) = &cache {
        let stats = cache.stats();
        eprintln!(
            "cache: {} hit(s), {} miss(es){}{}",
            stats.hits,
            stats.misses,
            if stats.poisoned > 0 {
                format!(", {} poisoned", stats.poisoned)
            } else {
                String::new()
            },
            if cache.persistent() { "" } else { " (memory-only)" }
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let setup = setup(args)?;
    let strategy = parse_strategy(args.get("strategy").unwrap_or("accpar"))?;
    let update = args.get("optimizer").map(parse_optimizer).transpose()?;
    let sim_config = SimConfig {
        update,
        ..SimConfig::default()
    };
    let planner = builder(&setup)
        .sim_config(sim_config)
        .build()
        .map_err(|e| e.to_string())?;
    let planned = planner.plan(strategy).map_err(|e| e.to_string())?;
    println!(
        "{} under {} on {}:",
        setup.network.name(),
        strategy,
        setup.array
    );
    println!("  {}", planned.report());
    let steps = planned.report().steps_per_sec().unwrap_or(0.0);
    println!(
        "  throughput {:.2} steps/s ({:.1} samples/s)",
        steps,
        steps * setup.network.batch() as f64
    );
    Ok(())
}

fn cmd_memory(args: &Args) -> Result<(), String> {
    let setup = setup(args)?;
    let strategy = parse_strategy(args.get("strategy").unwrap_or("accpar"))?;
    let optimizer = args
        .get("optimizer")
        .map(parse_optimizer)
        .transpose()?
        .unwrap_or_default();
    let planner = planner(&setup)?;
    let planned = planner.plan(strategy).map_err(|e| e.to_string())?;
    let view = setup.network.train_view().map_err(|e| e.to_string())?;
    let tree = GroupTree::bisect(&setup.array, planned.plan().depth()).map_err(|e| e.to_string())?;
    let report = memory_report(
        &view,
        planned.plan(),
        &tree,
        &SimConfig::default(),
        optimizer,
    )
    .map_err(|e| e.to_string())?;
    println!(
        "{} under {} with {} optimizer: {}",
        setup.network.name(),
        strategy,
        optimizer,
        report
    );
    Ok(())
}

/// Replays a seeded health timeline through the live-replanning
/// supervisor and prints the decision log and aggregate metrics.
fn cmd_supervise(args: &Args) -> Result<(), String> {
    let setup = setup(args)?;
    let seed = u64_flag(args, "seed")?.unwrap_or(0xacc9a7);
    let events = args.usize_or("events", 80)?;
    let mut sup = Supervisor::new(
        &setup.network,
        &setup.array,
        setup.levels,
        SuperviseConfig::default(),
    )
    .map_err(|e| e.to_string())?;
    let schedule = HealthSchedule::random(seed, sup.leaf_count(), sup.cut_count(), events)
        .map_err(|e| e.to_string())?;
    let report = sup.run(&schedule).map_err(|e| e.to_string())?;
    println!(
        "{} on {} (seed {seed}, {events} health events):",
        setup.network.name(),
        setup.array
    );
    for decision in &report.decisions {
        println!("  {decision}");
    }
    let mttr = report
        .mttr
        .map_or_else(|| String::from("n/a"), |m| format!("{m:.3}"));
    println!(
        "  {} decision(s), {} replan(s), {} retrie(s), availability {:.4}, \
         mttr {mttr}, steady degradation {:.3}x",
        report.decisions.len(),
        report.replans,
        report.retries,
        report.availability,
        report.steady_degradation,
    );
    match sup.plan() {
        Some(plan) => println!(
            "  serving: {} (healthy baseline: {})",
            plan.plan().type_string(),
            if plan == sup.healthy_plan() { "yes" } else { "no" }
        ),
        None => println!("  serving: shed (no viable plan on the surviving hardware)"),
    }
    if !sup.faults().is_empty() {
        println!("  terminal faults: {}", sup.faults());
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = argv.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = Args::parse(rest).and_then(|args| match command.as_str() {
        "models" => cmd_models(),
        "plan" => cmd_plan(&args),
        "simulate" => cmd_simulate(&args),
        "memory" => cmd_memory(&args),
        "supervise" => cmd_supervise(&args),
        "help" | "--help" | "-h" => {
            println!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn args_parse_flags_and_switches() {
        let args = Args::parse(&argv(&[
            "--model", "vgg16", "--batch", "256", "--json", "--explain",
        ]))
        .unwrap();
        assert_eq!(args.get("model"), Some("vgg16"));
        assert_eq!(args.usize_or("batch", 1).unwrap(), 256);
        assert!(args.has("json"));
        assert!(args.has("explain"));
        assert!(!args.has("quiet"));
    }

    #[test]
    fn args_reject_positional() {
        assert!(Args::parse(&argv(&["vgg16"])).is_err());
    }

    #[test]
    fn args_default_integers() {
        let args = Args::parse(&argv(&["--model", "lenet"])).unwrap();
        assert_eq!(args.usize_or("batch", 512).unwrap(), 512);
        assert!(Args::parse(&argv(&["--batch", "abc"]))
            .unwrap()
            .usize_or("batch", 1)
            .is_err());
    }

    #[test]
    fn strategy_and_optimizer_names() {
        assert_eq!(parse_strategy("dp").unwrap(), Strategy::DataParallel);
        assert_eq!(parse_strategy("accpar").unwrap(), Strategy::AccPar);
        assert!(parse_strategy("zzz").is_err());
        assert_eq!(parse_optimizer("adam").unwrap(), Optimizer::Adam);
        assert!(parse_optimizer("lion").is_err());
    }

    #[test]
    fn cache_flags_select_the_right_mode() {
        // Default: no cache.
        let args = Args::parse(&argv(&["--model", "lenet"])).unwrap();
        assert!(cache_from_args(&args).unwrap().is_none());
        // --no-cache wins even when a directory is given.
        let args = Args::parse(&argv(&[
            "--model", "lenet", "--cache-dir", "/tmp/x", "--no-cache",
        ]))
        .unwrap();
        assert!(cache_from_args(&args).unwrap().is_none());
        // --cache-cap alone enables a memory-only cache.
        let args =
            Args::parse(&argv(&["--model", "lenet", "--cache-cap", "8"])).unwrap();
        let cache = cache_from_args(&args).unwrap().expect("memory cache");
        assert!(!cache.persistent());
        // Zero capacity is rejected with a pointer to --no-cache.
        let args =
            Args::parse(&argv(&["--model", "lenet", "--cache-cap", "0"])).unwrap();
        assert!(cache_from_args(&args).is_err());
    }

    #[test]
    fn cache_dir_flag_opens_a_persistent_cache() {
        let dir = std::env::temp_dir().join(format!(
            "accpar-cli-cache-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_s = dir.to_str().unwrap().to_owned();
        let args =
            Args::parse(&argv(&["--model", "lenet", "--cache-dir", &dir_s])).unwrap();
        let cache = cache_from_args(&args).unwrap().expect("persistent cache");
        assert!(cache.persistent());
        assert_eq!(cache.load_report().loaded, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn setup_builds_network_and_array() {
        let args = Args::parse(&argv(&[
            "--model", "lenet", "--batch", "16", "--v2", "1", "--v3", "3",
        ]))
        .unwrap();
        let s = setup(&args).unwrap();
        assert_eq!(s.network.batch(), 16);
        assert_eq!(s.array.len(), 4);
        assert!(s.levels.is_none());
    }

    #[test]
    fn setup_rejects_unknown_model_and_empty_array() {
        let args = Args::parse(&argv(&["--model", "nope"])).unwrap();
        assert!(setup(&args).is_err());
        let args =
            Args::parse(&argv(&["--model", "lenet", "--v2", "0", "--v3", "0"])).unwrap();
        assert!(setup(&args).is_err());
    }
}
