//! The unified error type of the `accpar` facade.

use std::fmt;

/// Any error the AccPar workspace can produce.
///
/// Each member crate keeps its own precise error enum; this type folds
/// them into one for facade users, with `From` impls so `?` converts
/// automatically and [`std::error::Error::source`] preserving the full
/// chain (e.g. `AccParError::Plan` → `PlanError::Hw` → `HwError`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AccParError {
    /// Planning failed: search, configuration or memory feasibility
    /// (see [`PlanError`](accpar_core::PlanError)).
    Plan(accpar_core::PlanError),
    /// Simulation rejected its inputs or a fault scenario (see
    /// [`SimError`](accpar_sim::SimError)).
    Sim(accpar_sim::SimError),
    /// The network could not be built or analyzed for training (see
    /// [`NetworkError`](accpar_dnn::NetworkError)).
    Network(accpar_dnn::NetworkError),
    /// The accelerator array could not be described or bisected (see
    /// [`HwError`](accpar_hw::HwError)).
    Hw(accpar_hw::HwError),
    /// A partition ratio was non-finite or outside `[0, 1]` (see
    /// [`RatioError`](accpar_partition::RatioError)).
    Ratio(accpar_partition::RatioError),
    /// Tensor shape algebra failed (see
    /// [`ShapeError`](accpar_tensor::ShapeError)).
    Shape(accpar_tensor::ShapeError),
}

impl fmt::Display for AccParError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccParError::Plan(e) => write!(f, "planning failed: {e}"),
            AccParError::Sim(e) => write!(f, "simulation failed: {e}"),
            AccParError::Network(e) => write!(f, "network error: {e}"),
            AccParError::Hw(e) => write!(f, "hardware error: {e}"),
            AccParError::Ratio(e) => write!(f, "ratio error: {e}"),
            AccParError::Shape(e) => write!(f, "shape error: {e}"),
        }
    }
}

impl std::error::Error for AccParError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccParError::Plan(e) => Some(e),
            AccParError::Sim(e) => Some(e),
            AccParError::Network(e) => Some(e),
            AccParError::Hw(e) => Some(e),
            AccParError::Ratio(e) => Some(e),
            AccParError::Shape(e) => Some(e),
        }
    }
}

impl From<accpar_core::PlanError> for AccParError {
    fn from(e: accpar_core::PlanError) -> Self {
        AccParError::Plan(e)
    }
}

impl From<accpar_sim::SimError> for AccParError {
    fn from(e: accpar_sim::SimError) -> Self {
        AccParError::Sim(e)
    }
}

impl From<accpar_dnn::NetworkError> for AccParError {
    fn from(e: accpar_dnn::NetworkError) -> Self {
        AccParError::Network(e)
    }
}

impl From<accpar_hw::HwError> for AccParError {
    fn from(e: accpar_hw::HwError) -> Self {
        AccParError::Hw(e)
    }
}

impl From<accpar_partition::RatioError> for AccParError {
    fn from(e: accpar_partition::RatioError) -> Self {
        AccParError::Ratio(e)
    }
}

impl From<accpar_tensor::ShapeError> for AccParError {
    fn from(e: accpar_tensor::ShapeError) -> Self {
        AccParError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn sources_chain_through_nested_errors() {
        let e: AccParError = accpar_core::PlanError::Hw(accpar_hw::HwError::EmptyArray).into();
        let plan = e.source().expect("facade error has a source");
        assert!(plan.to_string().contains("hardware"));
        let hw = plan.source().expect("plan error chains to hw");
        assert_eq!(hw.to_string(), accpar_hw::HwError::EmptyArray.to_string());
    }

    #[test]
    fn every_member_converts() {
        let _: AccParError = accpar_hw::HwError::EmptyArray.into();
        let _: AccParError = accpar_partition::Ratio::new(2.0).unwrap_err().into();
        assert!(AccParError::from(accpar_hw::HwError::EmptyArray)
            .to_string()
            .contains("hardware"));
    }

    #[test]
    fn question_mark_converts_in_facade_results() {
        fn plan() -> Result<(), AccParError> {
            let array = accpar_hw::AcceleratorArray::heterogeneous_tpu(1, 1);
            accpar_hw::GroupTree::bisect(&array, 9)?;
            Ok(())
        }
        assert!(matches!(plan(), Err(AccParError::Hw(_))));
    }
}
